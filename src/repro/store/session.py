"""Store configuration and per-connection session/transaction state.

A **session** is one client connection: it owns at most one open
transaction at a time and a :class:`~repro.sim.retry.RetryState`
(milliseconds time base) that survives across that client's transaction
attempts — the server's backoff hints, starvation age, and golden-token
escalation all key off it, reusing the simulator's retry semantics
verbatim (:mod:`repro.sim.retry`).

A **transaction** (:class:`Txn`) is begin-timestamp state spread across
the shards it touched: per-shard ``(start_ts, generation)`` snapshot
pins, the buffered write set, and the ordered operation log the live
oracle monitor replays.  Cross-shard transactions pin each shard's
snapshot lazily at first touch (write-only shards at commit time), so
the isolation contract is *per-shard* snapshot isolation — see
``docs/store.md`` for the honest statement of what that does and does
not guarantee.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.sim.retry import RetryPolicy, RetryState

__all__ = ["StoreConfig", "Session", "Txn", "shard_of"]


def shard_of(key: str, shards: int) -> int:
    """Stable key→shard placement (CRC32 of the UTF-8 key)."""
    return zlib.crc32(key.encode("utf-8")) % shards


#: retry policy tuned for a millisecond time base: ~2ms base backoff
#: doubling to ~128ms, starving after 6 aborts or 2s of age
DEFAULT_RETRY_MS = RetryPolicy(
    backoff_base_cycles=2, backoff_max_exponent=6, jitter_cycles=3,
    attempt_budget=6, starvation_age_cycles=2_000, stall_budget=16)


@dataclass(frozen=True)
class StoreConfig:
    """Service-level configuration (validated, JSON round-trippable)."""

    #: number of independent SI shards
    shards: int = 4
    #: admission control: maximum concurrently open transactions;
    #: further ``BEGIN``s are shed with ``OVERLOADED``
    max_inflight: int = 64
    #: per-shard command-queue bound; a full queue sheds the command
    shard_queue_depth: int = 128
    #: default per-transaction deadline (``BEGIN`` may lower/raise it
    #: up to ``max_deadline_ms``)
    deadline_ms: int = 2_000
    #: ceiling a client may request via ``deadline_ms`` on BEGIN
    max_deadline_ms: int = 30_000
    #: whole-frame read timeout: a peer that cannot deliver one frame
    #: within this budget (slow-loris) is disconnected
    idle_timeout_ms: int = 10_000
    #: Δ for each shard's commit clock (section 4.2 race protocol)
    commit_delta: int = 64
    #: first-committer-wins validation at prepare; disabled only by the
    #: ``--broken no-fcw`` self-test proving the live monitor catches
    #: real violations
    validate_fcw: bool = True
    #: retry/backoff/escalation policy over milliseconds
    retry: RetryPolicy = DEFAULT_RETRY_MS
    #: seed for backoff jitter streams
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.shard_queue_depth < 1:
            raise ConfigError("shard_queue_depth must be >= 1")
        for name in ("deadline_ms", "max_deadline_ms", "idle_timeout_ms"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.deadline_ms > self.max_deadline_ms:
            raise ConfigError("deadline_ms must not exceed max_deadline_ms")
        if self.commit_delta < 1:
            raise ConfigError("commit_delta must be >= 1")

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (stable key set)."""
        return {
            "shards": self.shards,
            "max_inflight": self.max_inflight,
            "shard_queue_depth": self.shard_queue_depth,
            "deadline_ms": self.deadline_ms,
            "max_deadline_ms": self.max_deadline_ms,
            "idle_timeout_ms": self.idle_timeout_ms,
            "commit_delta": self.commit_delta,
            "validate_fcw": self.validate_fcw,
            "retry": self.retry.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreConfig":
        """Inverse of :meth:`to_dict` (tolerates missing keys)."""
        kwargs = {k: v for k, v in data.items()
                  if k in cls.__dataclass_fields__}
        if "retry" in kwargs and isinstance(kwargs["retry"], dict):
            kwargs["retry"] = RetryPolicy.from_dict(kwargs["retry"])
        return cls(**kwargs)


@dataclass
class Txn:
    """One open transaction: per-shard snapshots plus buffered writes."""

    uid: int
    session_id: int
    label: str
    #: absolute event-loop deadline (seconds, ``loop.time()`` base)
    deadline: float
    #: monitor sequence number stamped at BEGIN
    begin_seq: int
    #: shard -> (start_ts, shard generation at pin time)
    snapshots: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: buffered write set: (shard, key) -> value (last write wins)
    writes: Dict[Tuple[int, str], object] = field(default_factory=dict)
    #: ordered operation log for the oracle: (kind, shard, key, value)
    ops: List[Tuple[str, int, str, object]] = field(default_factory=list)
    #: per-shard commit timestamps, filled at apply
    commit_ts: Dict[int, int] = field(default_factory=dict)
    #: set when the transaction can no longer commit (abort cause)
    doomed: Optional[str] = None
    reads: int = 0

    def doom(self, cause: str) -> None:
        """Mark the transaction unable to commit (first cause sticks)."""
        if self.doomed is None:
            self.doomed = cause

    @property
    def touched_shards(self) -> set:
        """Shards this transaction has pinned or buffered writes on."""
        return set(self.snapshots) | {s for s, _ in self.writes}


@dataclass
class Session:
    """One client connection's server-side state."""

    session_id: int
    retry: RetryState
    txn: Optional[Txn] = None
    #: transactions this session completed (monitor bookkeeping)
    committed: int = 0
    aborted: int = 0
