"""Fault-injection and retry-policy tests.

Three layers are covered: the :class:`FaultPlan`/:class:`FaultInjector`
contracts (round trips, determinism, suppression), the engine
integration (every backend terminates under the pinned adversarial
plan, the watchdog catches permanent begin stalls, escalation is
load-bearing), and the oracle-checked campaign A/B: with escalation the
campaign is clean, without it every backend deterministically fails to
make progress.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import SplitRandom
from repro.faults import (FAULT_SITES, FaultInjector, FaultPlan,
                          adversarial_plan)
from repro.harness.executor import serial_executor
from repro.harness.spec import ExperimentSpec
from repro.oracle.fuzz import (apply_config_patch, check_schedule_run,
                               fault_campaign, generate_schedule)
from repro.sim.retry import RetryPolicy
from repro.tm import SYSTEMS

TIGHT_RETRY = RetryPolicy(attempt_budget=3, stall_budget=8,
                          starvation_age_cycles=20_000)


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().active()

    def test_adversarial_plan_is_active_and_round_trips(self):
        plan = adversarial_plan(3)
        assert plan.active()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_coerces_overflow_list_to_tuple(self):
        plan = FaultPlan.from_dict({"overflow_at_commits": [2, 4]})
        assert plan.overflow_at_commits == (2, 4)
        assert hash(plan)  # stays hashable for frozen specs

    def test_dict_key_set_matches_fields(self):
        assert set(FaultPlan().to_dict()) == set(
            FaultPlan.__dataclass_fields__)

    @pytest.mark.parametrize("kwargs", [
        {"abort_rate": 1.5},
        {"begin_stall_rate": -0.1},
        {"abort_burst": 0},
        {"begin_stall_burst": 0},
        {"gc_pause_cycles": -1},
        {"squeeze_max_versions": -1},
        {"squeeze_read_lines": -1},
        {"squeeze_write_lines": -1},
        {"squeeze_buffer_entries": -1},
        {"overflow_at_commits": (-1,)},
        {"hang_seconds": -1.0},
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)

    def test_site_registry_names_real_fields(self):
        fields = set(FaultPlan.__dataclass_fields__)
        for site in FAULT_SITES:
            for name in site["fields"].split(", "):
                assert name in fields, site["site"]


class TestRetryPolicy:
    def test_round_trip(self):
        policy = RetryPolicy(attempt_budget=2, escalation=False)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(attempt_budget=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_cycles=-1)

    def test_delay_is_capped_exponential_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_base_cycles=10, backoff_max_exponent=3,
                             jitter_cycles=4)
        rng = SplitRandom(0)
        for attempt in range(10):
            delay = policy.delay(attempt, rng)
            floor = 10 * (1 << min(attempt, 3))
            assert floor <= delay < floor + 4
        # the cap holds: attempt 9 charges no more than attempt 3's floor
        assert policy.delay(9, rng) < 10 * (1 << 3) + 4


class TestFaultInjector:
    def test_decision_streams_are_deterministic(self):
        plan = adversarial_plan(11)
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert ([a.begin_stall() for _ in range(200)]
                == [b.begin_stall() for _ in range(200)])
        assert ([a.spurious_abort() for _ in range(200)]
                == [b.spurious_abort() for _ in range(200)])

    def test_suppression_silences_protocol_sites(self):
        plan = FaultPlan(begin_stall_rate=1.0, abort_rate=1.0,
                         overflow_at_commits=(0, 1, 2))
        injector = FaultInjector(plan)
        injector.suppressed = True
        assert not any(injector.begin_stall() for _ in range(20))
        assert not any(injector.spurious_abort() for _ in range(20))
        assert not any(injector.forced_overflow() for _ in range(3))
        assert injector.injected == {}

    def test_squeeze_respects_install_window(self):
        from repro.common.config import MVMConfig
        config = MVMConfig(max_versions=4)
        injector = FaultInjector(FaultPlan(squeeze_max_versions=2,
                                           squeeze_start=1, squeeze_span=2))
        caps = [injector.squeeze(config).max_versions for _ in range(4)]
        assert caps == [4, 2, 2, 4]

    def test_stats_count_injections(self):
        injector = FaultInjector(FaultPlan(abort_rate=1.0))
        for _ in range(5):
            injector.spurious_abort()
        stats = injector.stats()
        assert stats["injected"]["spurious-abort"] == 5


class TestEngineIntegration:
    def test_adversarial_run_terminates_and_reports(self):
        config = SimConfig(faults=adversarial_plan(0), retry=TIGHT_RETRY)
        result = ExperimentSpec("list", "SI-TM", 2, 1, "test",
                                config=config).run()
        assert result.commits > 0
        assert result.max_attempts_seen >= 1
        assert result.fault_stats is not None
        assert result.fault_stats["injected"]

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_total_abort_storm_terminates_with_escalation(self, system):
        plan = FaultPlan(abort_rate=1.0)
        config = SimConfig(faults=plan, retry=TIGHT_RETRY)
        result = ExperimentSpec("array", system, 2, 1, "test",
                                config=config).run()
        # no commit can succeed outside the golden token, so every
        # commit the run made was bought by an escalation
        assert result.commits > 0
        assert result.escalations > 0

    def test_watchdog_diagnoses_permanent_begin_stall(self):
        # a 1.0-rate stall storm with no retry policy: begin never
        # proceeds, and the watchdog must raise a diagnosable error
        # instead of spinning silently to max_steps
        plan = FaultPlan(begin_stall_rate=1.0, begin_stall_burst=1)
        spec = ExperimentSpec("array", "SI-TM", 2, 1, "test",
                              config=SimConfig(faults=plan))
        with pytest.raises(SimulationError, match="permanent begin stall"):
            spec.run()

    def test_escalation_defeats_permanent_begin_stall(self):
        plan = FaultPlan(begin_stall_rate=1.0, begin_stall_burst=1)
        config = SimConfig(faults=plan, retry=TIGHT_RETRY)
        result = ExperimentSpec("array", "SI-TM", 2, 1, "test",
                                config=config).run()
        assert result.commits > 0 and result.escalations > 0


class TestFaultCampaign:
    def test_campaign_is_clean_across_all_backends(self):
        report = fault_campaign(serial_executor(), seeds=(0,), schedules=1)
        assert report.clean, report.violations
        for system in SYSTEMS:
            assert report.per_system[system]["committed"] > 0

    def test_without_escalation_every_backend_livelocks(self):
        report = fault_campaign(serial_executor(), systems=["SI-TM"],
                                seeds=(0,), schedules=1, escalation=False)
        assert not report.clean
        assert {v["rule"] for _, _, v in report.violations} == {"no-progress"}
        # expected-failure campaigns skip the shrink-and-persist step
        assert report.repro_path is None


@st.composite
def fault_plans(st_draw):
    """Arbitrary protocol-level plans (process faults excluded: crashing
    or hanging the test process is the executor suite's job)."""
    return FaultPlan(
        seed=st_draw(st.integers(0, 2**16)),
        squeeze_max_versions=st_draw(st.integers(0, 3)),
        squeeze_start=st_draw(st.integers(0, 4)),
        squeeze_span=st_draw(st.integers(0, 4)),
        squeeze_read_lines=st_draw(st.integers(0, 3)),
        squeeze_write_lines=st_draw(st.integers(0, 3)),
        squeeze_buffer_entries=st_draw(st.integers(0, 3)),
        overflow_at_commits=tuple(
            st_draw(st.lists(st.integers(0, 12), max_size=3))),
        gc_pause_cycles=st_draw(st.integers(0, 100)),
        begin_stall_rate=st_draw(st.floats(0.0, 1.0)),
        begin_stall_burst=st_draw(st.integers(1, 8)),
        abort_rate=st_draw(st.floats(0.0, 1.0)),
        abort_burst=st_draw(st.integers(1, 8)),
    )


@settings(max_examples=20, deadline=None)
@given(plan=fault_plans(), seed=st.integers(0, 2**8))
def test_any_plan_terminates_and_is_oracle_clean(plan, seed):
    """The tentpole liveness property: ANY protocol fault plan plus ANY
    seed terminates under an escalating retry policy, and the run's
    history passes the isolation oracle.  The plan space includes the
    capacity squeezes, and the system set includes HybridHTM, whose
    serialized fallback must coexist with golden-token escalation."""
    patch = {"faults": plan.to_dict(), "retry": TIGHT_RETRY.to_dict()}
    schedule = apply_config_patch(
        generate_schedule(seed, 0, threads=2, txns=1, cells=3, ops=2),
        patch)
    for system in ("SI-TM", "2PL", "HybridHTM"):
        violations, _, history = check_schedule_run(schedule, system, seed)
        assert violations == [], [str(v) for v in violations]
        assert history is not None and history.committed()
