"""Bench suites, BENCH artifact schema, and artifact persistence."""

import copy
import json

import pytest

from repro.common.errors import ConfigError
from repro.perf import (SUITES, BenchSuite, artifact_path, load_artifact,
                        run_bench, save_artifact, validate_artifact)
from repro.perf.bench import SCHEMA, SCHEMA_VERSION

SMOKE = SUITES["smoke"]


@pytest.fixture(scope="module")
def artifact():
    """One smoke-suite artifact, shared read-only across this module."""
    return run_bench(SMOKE, "t-base")


class TestSuites:
    def test_specs_are_profiling_grid(self):
        specs = SMOKE.specs()
        assert len(specs) == len(SMOKE.cells) * SMOKE.seeds
        assert all(s.profiling and s.telemetry is False for s in specs)
        assert [s.seed for s in specs[:SMOKE.seeds]] == list(
            range(1, SMOKE.seeds + 1))

    def test_pinned_suites_named_consistently(self):
        for name, suite in SUITES.items():
            assert suite.name == name
            assert suite.cells and suite.seeds >= 1


class TestRunBench:
    def test_artifact_validates_and_carries_both_sections(self, artifact):
        assert validate_artifact(artifact) == []
        assert artifact["schema"] == SCHEMA
        assert artifact["schema_version"] == SCHEMA_VERSION
        cell = artifact["deterministic"]["rbtree/SI-TM/t4"]
        assert cell["throughput"] > 0
        assert abs(sum(cell["phase_shares"].values()) - 1.0) < 1e-6
        assert "wall_clock_s" in artifact["advisory"]

    def test_deterministic_section_reproducible(self, artifact):
        again = run_bench(SMOKE, "t-again")
        assert again["deterministic"] == artifact["deterministic"]


class TestValidation:
    def test_rejects_foreign_schema(self, artifact):
        bad = dict(artifact, schema="other")
        assert any("schema" in e for e in validate_artifact(bad))

    def test_rejects_newer_version(self, artifact):
        bad = dict(artifact, schema_version=SCHEMA_VERSION + 1)
        assert any("newer" in e for e in validate_artifact(bad))

    def test_rejects_missing_cell_field(self, artifact):
        bad = copy.deepcopy(artifact)
        del bad["deterministic"]["rbtree/SI-TM/t4"]["throughput"]
        assert any("throughput" in e for e in validate_artifact(bad))

    def test_rejects_non_conserved_phase_shares(self, artifact):
        bad = copy.deepcopy(artifact)
        shares = bad["deterministic"]["rbtree/SI-TM/t4"]["phase_shares"]
        shares["read"] += 0.5
        assert any("conservation" in e for e in validate_artifact(bad))

    def test_rejects_non_object(self):
        assert validate_artifact([]) == ["artifact is not a JSON object"]


class TestPersistence:
    def test_save_load_round_trip(self, artifact, tmp_path):
        path = save_artifact(artifact, tmp_path)
        assert path == artifact_path("t-base", tmp_path)
        assert load_artifact(path) == artifact
        # on-disk form is canonical: sorted keys, trailing newline
        text = path.read_text()
        assert text == json.dumps(artifact, sort_keys=True, indent=2) + "\n"

    def test_save_refuses_invalid(self, artifact, tmp_path):
        bad = dict(artifact, schema="other")
        with pytest.raises(ConfigError, match="refusing to save"):
            save_artifact(bad, tmp_path)

    def test_load_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_artifact(tmp_path / "absent.json")
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        with pytest.raises(ConfigError, match="not JSON"):
            load_artifact(broken)

    def test_bench_dir_env_isolation(self, artifact, tmp_path,
                                     monkeypatch):
        monkeypatch.setenv("SITM_BENCH_DIR", str(tmp_path / "bdir"))
        path = save_artifact(artifact)
        assert path.parent == tmp_path / "bdir"


class TestBackendFilteredSuite:
    def test_filtered_suite_runs(self):
        quick = SUITES["quick"]
        cells = tuple(c for c in quick.cells if c[1] == "SI-TM")
        sub = BenchSuite(quick.name, cells, quick.seeds, quick.profile)
        artifact = run_bench(sub, "t-filtered")
        assert set(artifact["deterministic"]) == {
            f"{w}/{s}/t{t}" for w, s, t in cells}
