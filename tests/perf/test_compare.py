"""Noise-aware artifact comparison: what gates, what only warns."""

import copy

import pytest

from repro.perf import SUITES, compare_artifacts, run_bench
from repro.perf.compare import (ABORT_RATE_FLOOR, PHASE_SHARE_TOL,
                                THROUGHPUT_FLOOR)


@pytest.fixture(scope="module")
def base():
    return run_bench(SUITES["smoke"], "t-base")


@pytest.fixture
def current(base):
    """A mutable deep copy standing in for a later code version."""
    artifact = copy.deepcopy(base)
    artifact["label"] = "t-current"
    artifact["code_fingerprint"] = "different"
    return artifact


CELL = "rbtree/SI-TM/t4"


class TestVerdicts:
    def test_identical_artifacts_pass(self, base, current):
        report = compare_artifacts(base, current)
        assert report.passed and not report.regressions
        assert "PASS" in report.render()

    def test_same_fingerprint_warns_but_passes(self, base):
        report = compare_artifacts(base, copy.deepcopy(base))
        assert report.passed
        assert any("fingerprint" in w for w in report.warnings)

    def test_throughput_regression_detected(self, base, current):
        cell = current["deterministic"][CELL]
        cell["throughput"] *= 1.0 - 2 * THROUGHPUT_FLOOR
        report = compare_artifacts(base, current)
        assert not report.passed
        assert any(CELL in r and "throughput" in r
                   for r in report.regressions)
        assert "FAIL" in report.render()

    def test_throughput_improvement_noted_not_fatal(self, base, current):
        current["deterministic"][CELL]["throughput"] *= 1.5
        report = compare_artifacts(base, current)
        assert report.passed
        assert any(CELL in line for line in report.improvements)

    def test_noise_widens_the_tolerance(self, base, current):
        """A drop inside 3x seed stddev is noise, not a regression."""
        cell = current["deterministic"][CELL]
        cell["throughput"] *= 1.0 - 2 * THROUGHPUT_FLOOR
        cell["throughput_rel_stddev"] = 0.10  # 3x0.10 > 2xfloor
        assert compare_artifacts(base, current).passed

    def test_abort_rate_rise_detected(self, base, current):
        current["deterministic"][CELL]["abort_rate"] += \
            2 * ABORT_RATE_FLOOR
        report = compare_artifacts(base, current)
        assert any("abort rate" in r for r in report.regressions)

    def test_phase_share_shift_detected(self, base, current):
        shares = current["deterministic"][CELL]["phase_shares"]
        donor = max(shares, key=shares.get)
        shares[donor] -= 2 * PHASE_SHARE_TOL
        shares["abort"] = shares.get("abort", 0.0) + 2 * PHASE_SHARE_TOL
        report = compare_artifacts(base, current)
        assert any("share" in r for r in report.regressions)

    def test_missing_cell_is_regression_new_cell_warns(self, base,
                                                       current):
        moved = current["deterministic"].pop(CELL)
        current["deterministic"]["rbtree/SI-TM/t32"] = moved
        report = compare_artifacts(base, current)
        assert any("missing" in r for r in report.regressions)
        assert any("new cell" in w for w in report.warnings)

    def test_suite_mismatch_not_comparable(self, base, current):
        current["suite"] = "quick"
        report = compare_artifacts(base, current)
        assert not report.passed
        assert any("not comparable" in r for r in report.regressions)

    def test_wall_clock_slowdown_only_warns(self, base, current):
        slow_base = copy.deepcopy(base)
        slow_base["advisory"]["wall_clock_s"] = 1.0
        current["advisory"]["wall_clock_s"] = 10.0
        report = compare_artifacts(slow_base, current)
        assert report.passed
        assert any("wall clock" in w for w in report.warnings)
