"""Export-module tests."""

import csv
import io
import json

from repro.harness.experiments import (
    Figure1Row,
    Figure7Cell,
    Figure8Series,
    ScheduleOutcome,
)
from repro.harness.export import (
    figure1_rows,
    figure7_rows,
    figure8_rows,
    schedule_rows,
    to_csv,
    to_json,
)


class TestFlattening:
    def test_figure1(self):
        rows = figure1_rows([Figure1Row("list", 98.5, 1.5, 120.0)])
        assert rows == [{"workload": "list", "read_write_pct": 98.5,
                         "write_write_pct": 1.5, "aborts_per_run": 120.0}]

    def test_figure7(self):
        cell = Figure7Cell("array", 8,
                           {"2PL": 100.0, "SI-TM": 1.0},
                           {"2PL": 1.0, "SI-TM": 0.01})
        rows = figure7_rows([cell])
        assert len(rows) == 2
        si_row = next(r for r in rows if r["system"] == "SI-TM")
        assert si_row["relative_to_2pl"] == 0.01
        assert si_row["threads"] == 8

    def test_figure7_missing_relative(self):
        cell = Figure7Cell("x", 8, {"2PL": 0.0}, {"2PL": None})
        assert figure7_rows([cell])[0]["relative_to_2pl"] == ""

    def test_figure8(self):
        series = Figure8Series("list", "SI-TM", [1, 8], [1.0, 5.3])
        rows = figure8_rows([series])
        assert rows[1] == {"workload": "list", "system": "SI-TM",
                           "threads": 8, "speedup": 5.3,
                           "throughput_rel_stddev": "",
                           "backoff_cycles": 0.0,
                           "commit_wait_cycles": 0.0}

    def test_figure8_contention_columns(self):
        series = Figure8Series("list", "2PL", [1, 8], [1.0, 3.0],
                               [0.0, 0.01], [0.0, 1500.5], [0.0, 200.0])
        rows = figure8_rows([series])
        assert rows[1]["backoff_cycles"] == 1500.5
        assert rows[1]["commit_wait_cycles"] == 200.0

    def test_figure7_contention_columns(self):
        cell = Figure7Cell("array", 8,
                           {"2PL": 100.0}, {"2PL": 1.0}, {},
                           {"2PL": 1200.0}, {"2PL": 300.0})
        (row,) = figure7_rows([cell])
        assert row["backoff_cycles"] == 1200.0
        assert row["commit_wait_cycles"] == 300.0

    def test_figure8_stddev(self):
        series = Figure8Series("list", "SI-TM", [1, 8], [1.0, 5.3],
                               [0.0, 0.031])
        rows = figure8_rows([series])
        assert rows[1]["throughput_rel_stddev"] == 0.031

    def test_schedules(self):
        outcome = ScheduleOutcome("SI-TM", ["TX0"], ["TX3"],
                                  {"TX3": "write-write"})
        rows = schedule_rows([outcome])
        assert rows[0]["causes"] == "TX3:write-write"


class TestSerialisation:
    def test_csv_round_trip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        parsed = list(csv.DictReader(io.StringIO(to_csv(rows))))
        assert parsed == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_round_trip(self):
        rows = [{"a": 1}]
        assert json.loads(to_json(rows)) == rows


class TestEndToEnd:
    def test_real_figure7_export(self):
        from repro.harness.experiments import figure7

        cells = figure7(profile="test", thread_counts=(2,), seeds=1,
                        workloads=["rbtree"])
        rows = figure7_rows(cells)
        assert {r["system"] for r in rows} == {"2PL", "SONTM", "SI-TM"}
        text = to_csv(rows)
        assert "rbtree" in text
