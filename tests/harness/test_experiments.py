"""Experiment-driver tests (tiny profiles — shape, not magnitude)."""

import pytest

from repro.harness import experiments


class TestFigure1:
    def test_rows_and_percentages(self):
        rows = experiments.figure1(profile="test", threads=4, seeds=1)
        assert len(rows) == len(experiments.FIGURE1_BENCHMARKS)
        for row in rows:
            total = row.read_write_pct + row.write_write_pct
            assert total == 0 or total == pytest.approx(100.0)

    def test_read_write_dominates(self):
        """The paper's 75-99% claim, aggregated over the benchmarks."""
        rows = experiments.figure1(profile="test", threads=8, seeds=1)
        rw = sum(r.read_write_pct * r.total_aborts for r in rows)
        ww = sum(r.write_write_pct * r.total_aborts for r in rows)
        assert rw > 3 * ww


class TestFigure7:
    def test_cells_shape(self):
        cells = experiments.figure7(profile="test", thread_counts=(4,),
                                    seeds=1, workloads=["rbtree"])
        assert len(cells) == 1
        cell = cells[0]
        assert set(cell.aborts) == {"2PL", "SONTM", "SI-TM"}
        assert cell.relative["2PL"] in (1.0, None)

    def test_array_si_far_below_2pl(self):
        cells = experiments.figure7(profile="test", thread_counts=(8,),
                                    seeds=2, workloads=["array"])
        relative = cells[0].relative["SI-TM"]
        assert relative is not None and relative < 0.25


class TestFigure8:
    def test_series_shape(self):
        series = experiments.figure8(profile="test", thread_counts=(1, 2),
                                     seeds=1, workloads=["ssca2"])
        assert len(series) == 3  # one per system
        for s in series:
            assert s.speedup[0] == pytest.approx(1.0)
            assert len(s.speedup) == 2


class TestTable2:
    def test_census_rows_per_benchmark(self):
        results = experiments.table2(profile="test", threads=4,
                                     workloads=["rbtree", "list"])
        assert set(results) == {"rbtree", "list"}
        for rows in results.values():
            assert [r["version"] for r in rows] == \
                ["1st", "2nd", "3rd", "4th", "5th", "tail"]
            assert sum(r["accesses"] for r in rows) > 0

    def test_tail_fraction_helper(self):
        rows = [{"version": "1st", "accesses": 99},
                {"version": "2nd", "accesses": 0},
                {"version": "3rd", "accesses": 0},
                {"version": "4th", "accesses": 0},
                {"version": "5th", "accesses": 1},
                {"version": "tail", "accesses": 0}]
        assert experiments.census_tail_fraction(rows, 4) == \
            pytest.approx(0.01)

    def test_first_version_dominates(self):
        results = experiments.table2(profile="test", threads=8,
                                     workloads=["rbtree"])
        rows = {r["version"]: r["accesses"] for r in results["rbtree"]}
        assert rows["1st"] > sum(v for k, v in rows.items() if k != "1st")


class TestOverheads:
    def test_paper_rows(self):
        rows = experiments.overheads()
        by_bundle = {r["bundle_lines"]: r for r in rows}
        assert by_bundle[1]["overhead_full_versions_pct"] == \
            pytest.approx(12.5)
        assert by_bundle[1]["overhead_worst_case_pct"] == pytest.approx(50.0)
        assert by_bundle[8]["overhead_worst_case_pct"] == \
            pytest.approx(6.25)
        assert by_bundle[1]["bandwidth_best_case_pct"] == pytest.approx(12.5)
