"""Runner tests: single runs, seed aggregation, census config."""

import pytest

from repro.common.config import MVMConfig, SimConfig, VersionCapPolicy
from repro.common.errors import ConfigError
from repro.harness.runner import run_once, run_seeds


class TestRunOnce:
    def test_result_shape(self):
        result = run_once("rbtree", "SI-TM", threads=2, seed=1,
                          profile="test")
        assert result.commits > 0
        assert result.makespan_cycles > 0
        assert result.reads > 0
        assert 0.0 <= result.abort_rate < 1.0
        assert result.workload == "rbtree"
        assert result.system == "SI-TM"

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError):
            run_once("rbtree", "MAGIC", 2, 1, profile="test")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            run_once("nope", "SI-TM", 2, 1, profile="test")

    def test_deterministic_per_seed(self):
        a = run_once("list", "2PL", 2, seed=9, profile="test")
        b = run_once("list", "2PL", 2, seed=9, profile="test")
        assert (a.commits, a.aborts, a.makespan_cycles) == \
               (b.commits, b.aborts, b.makespan_cycles)

    def test_verified_flag_populated(self):
        result = run_once("list", "SI-TM", 2, 1, profile="test")
        assert result.verified is True

    def test_census_config_produces_rows(self):
        config = SimConfig(mvm=MVMConfig(
            cap_policy=VersionCapPolicy.UNBOUNDED, census=True))
        result = run_once("rbtree", "SI-TM", 2, 1, profile="test",
                          config=config)
        assert result.census_rows is not None
        assert sum(r["accesses"] for r in result.census_rows) > 0

    def test_throughput_positive(self):
        result = run_once("ssca2", "SI-TM", 2, 1, profile="test")
        assert result.throughput > 0


class TestRunSeeds:
    def test_aggregate_metrics(self):
        agg = run_seeds("rbtree", "SI-TM", 2, profile="test", seeds=2)
        assert len(agg.runs) == 2
        assert agg.throughput > 0
        assert agg.all_verified

    def test_mean_of_abort_rates(self):
        agg = run_seeds("kmeans", "2PL", 4, profile="test", seeds=2)
        rates = [r.abort_rate for r in agg.runs]
        assert agg.abort_rate == pytest.approx(sum(rates) / 2)

    def test_figure1_fraction(self):
        agg = run_seeds("list", "2PL", 4, profile="test", seeds=2)
        fraction = agg.read_write_fraction
        assert fraction is None or 0.0 <= fraction <= 1.0

    def test_throughput_stddev(self):
        agg = run_seeds("rbtree", "SI-TM", 2, profile="test", seeds=3)
        throughputs = [r.throughput for r in agg.runs]
        mean = sum(throughputs) / len(throughputs)
        variance = sum((t - mean) ** 2 for t in throughputs) / len(throughputs)
        assert agg.throughput_stddev == pytest.approx(variance ** 0.5)
        assert agg.throughput_rel_stddev == \
            pytest.approx(agg.throughput_stddev / mean)

    def test_rel_stddev_zero_when_identical(self):
        one = run_once("rbtree", "SI-TM", 2, 1, profile="test")
        from repro.harness.runner import Aggregate

        agg = Aggregate("rbtree", "SI-TM", 2, [one, one])
        assert agg.throughput_stddev == 0.0
        assert agg.throughput_rel_stddev == 0.0


class TestRunResultSerialization:
    def test_round_trip(self):
        from repro.harness.runner import RunResult

        result = run_once("rbtree", "SI-TM", 2, 1, profile="test")
        recovered = RunResult.from_dict(result.to_dict())
        assert recovered == result
        assert recovered.throughput == result.throughput

    def test_json_safe(self):
        import json

        from repro.harness.runner import RunResult

        result = run_once("list", "2PL", 2, 1, profile="test")
        recovered = RunResult.from_dict(json.loads(
            json.dumps(result.to_dict())))
        assert recovered == result


class TestSeedConstants:
    def test_defaults_documented(self):
        from repro.harness.runner import DEFAULT_SEEDS, PAPER_SEEDS

        assert DEFAULT_SEEDS == 3
        assert PAPER_SEEDS == 5
