"""Claims-module unit tests (cheap wiring checks; the full battery runs
in benchmarks/test_claims.py)."""

from repro.harness.claims import ClaimResult, all_passed


class TestClaimResult:
    def test_all_passed_true(self):
        results = [ClaimResult("a", "d", "e", "m", True),
                   ClaimResult("b", "d", "e", "m", True)]
        assert all_passed(results)

    def test_all_passed_false(self):
        results = [ClaimResult("a", "d", "e", "m", True),
                   ClaimResult("b", "d", "e", "m", False)]
        assert not all_passed(results)

    def test_empty_passes(self):
        assert all_passed([])


class TestCliIntegration:
    def test_claims_command_registered(self):
        from repro.harness.cli import build_parser

        args = build_parser().parse_args(["claims", "--profile", "test"])
        assert args.command == "claims"
