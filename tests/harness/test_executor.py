"""Executor tests: cache behaviour, parallel determinism, ordering.

The determinism tests are the load-bearing ones: the acceptance bar for
the execution layer is that the same spec produces field-identical
results in-process, through a worker pool, and from the cache.
"""

import dataclasses
import json

import pytest

from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.faults import FaultPlan
from repro.harness.executor import (
    Executor,
    ResultCache,
    RunFailure,
    code_fingerprint,
    serial_executor,
)
from repro.harness.spec import ExperimentSpec

SPEC = ExperimentSpec("rbtree", "SI-TM", 2, 1, "test")
SPECS = [ExperimentSpec("list", "2PL", 2, seed, "test")
         for seed in (1, 2, 3)]


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_hex_string(self):
        fp = code_fingerprint()
        assert len(fp) == 16
        int(fp, 16)


class TestResultCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = SPEC.run()
        cache.store(SPEC, result)
        assert cache.load(SPEC) == result

    def test_miss_on_empty(self, tmp_path):
        assert ResultCache(tmp_path).load(SPEC) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(SPEC, SPEC.run())
        cache.path(SPEC).write_text("not json")
        assert cache.load(SPEC) is None

    def test_stale_fingerprint_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(SPEC, SPEC.run())
        payload = json.loads(cache.path(SPEC).read_text())
        payload["fingerprint"] = "0" * 16
        cache.path(SPEC).write_text(json.dumps(payload))
        assert cache.load(SPEC) is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(SPEC, SPEC.run())
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["current_code"] == 1
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_env_var_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SITM_CACHE_DIR", str(tmp_path / "env"))
        assert ResultCache().root == tmp_path / "env"


class TestExecutorCaching:
    def test_second_run_fully_cached(self, tmp_path):
        first = Executor(jobs=1, cache=True, cache_dir=tmp_path)
        results1 = first.run(SPECS)
        assert first.counters()["cache_misses"] == len(SPECS)

        second = Executor(jobs=1, cache=True, cache_dir=tmp_path)
        results2 = second.run(SPECS)
        counters = second.counters()
        assert counters["cache_hits"] == len(SPECS)
        assert counters["executed"] == 0
        assert counters["hit_rate"] == 1.0
        assert results1 == results2

    def test_no_cache_leaves_disk_untouched(self, tmp_path):
        executor = Executor(jobs=1, cache=False, cache_dir=tmp_path)
        executor.run([SPEC])
        assert not list(tmp_path.glob("*.json"))

    def test_refresh_recomputes_but_stores(self, tmp_path):
        Executor(jobs=1, cache=True, cache_dir=tmp_path).run([SPEC])
        refresher = Executor(jobs=1, cache=True, refresh=True,
                             cache_dir=tmp_path)
        refresher.run([SPEC])
        assert refresher.counters()["executed"] == 1
        # entry is still (re)stored for the next non-refresh run
        follower = Executor(jobs=1, cache=True, cache_dir=tmp_path)
        follower.run([SPEC])
        assert follower.counters()["cache_hits"] == 1

    def test_duplicate_specs_computed_once(self, tmp_path):
        executor = Executor(jobs=1, cache=False, cache_dir=tmp_path)
        results = executor.run([SPEC, SPEC, SPEC])
        assert executor.counters()["executed"] == 1
        assert len(results) == 1


class TestDeterminismAcrossProcesses:
    """Same spec, same numbers: in-process vs pool vs cache."""

    def test_pool_matches_inline(self):
        inline = {spec: spec.run() for spec in SPECS}
        pooled = Executor(jobs=2, cache=False).run(SPECS)
        for spec in SPECS:
            assert dataclasses.asdict(pooled[spec]) == \
                dataclasses.asdict(inline[spec])

    def test_pool_with_custom_config(self):
        config = SimConfig(txn_overhead_cycles=10)
        spec = ExperimentSpec("list", "SI-TM", 2, 1, "test", config)
        pooled = Executor(jobs=2, cache=False).run([spec, SPEC])
        assert pooled[spec] == spec.run()

    def test_cached_result_field_identical(self, tmp_path):
        Executor(jobs=1, cache=True, cache_dir=tmp_path).run([SPEC])
        cached = Executor(jobs=1, cache=True,
                          cache_dir=tmp_path).run([SPEC])[SPEC]
        assert dataclasses.asdict(cached) == \
            dataclasses.asdict(SPEC.run())


class TestOrdering:
    def test_result_map_in_input_order(self, tmp_path):
        executor = Executor(jobs=1, cache=False, cache_dir=tmp_path)
        shuffled = [SPECS[2], SPECS[0], SPECS[1]]
        results = executor.run(shuffled)
        assert list(results) == shuffled

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            Executor(jobs=-1)

    def test_jobs_zero_means_cpu_count(self):
        assert Executor(jobs=0).jobs >= 1

    def test_serial_executor_defaults(self):
        executor = serial_executor()
        assert executor.jobs == 1
        assert executor.use_cache is False


@dataclasses.dataclass(frozen=True)
class _BoomSpec:
    """Minimal spec whose run always raises (inline quarantine path)."""

    exc: type = RuntimeError

    def run(self):
        raise self.exc("boom")

    def spec_hash(self):
        return "f" * 24

    def __str__(self):
        return "boom/spec"


class TestCrashTolerance:
    """A grid must never die of one bad cell (see ISSUE acceptance)."""

    def _crash_spec(self):
        return ExperimentSpec("array", "SI-TM", 2, 1, "test",
                              faults=FaultPlan(crash_at_begin=3))

    def test_run_failure_round_trips(self):
        failure = RunFailure(spec="x", spec_hash="0" * 24, kind="crash",
                             message="worker died", attempts=2)
        assert RunFailure.from_dict(failure.to_dict()) == failure
        assert failure.failed is True

    def test_results_have_no_failed_flag(self):
        assert not getattr(SPEC.run(), "failed", False)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            Executor(timeout=0)
        with pytest.raises(ValueError):
            Executor(timeout=-1.5)

    def test_worker_crash_mid_grid_is_quarantined(self, tmp_path):
        # one cell SIGKILLs its worker; the grid must complete around
        # it with a structured record, never an unhandled traceback
        crash = self._crash_spec()
        grid = [SPECS[0], crash, SPECS[1], SPECS[2]]
        executor = Executor(jobs=2, cache=True, cache_dir=tmp_path)
        results = executor.run(grid)
        failure = results[crash]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "crash"
        assert failure.attempts == Executor.MAX_ATTEMPTS
        for spec in SPECS:
            assert not getattr(results[spec], "failed", False)
        assert executor.counters()["failures"] == 1
        # failures are never cached: only the three good cells persist
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_hung_worker_times_out(self):
        hang = ExperimentSpec(
            "array", "SI-TM", 2, 1, "test",
            faults=FaultPlan(hang_at_begin=2, hang_seconds=60.0))
        executor = Executor(jobs=2, cache=False, timeout=1.0)
        results = executor.run([SPECS[0], hang])
        assert isinstance(results[hang], RunFailure)
        assert results[hang].kind == "timeout"
        assert not getattr(results[SPECS[0]], "failed", False)

    def test_inline_exception_is_quarantined(self):
        boom = _BoomSpec()
        results = Executor(jobs=1, cache=False).run([boom])
        failure = results[boom]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "error"
        assert "RuntimeError: boom" in failure.message

    def test_config_error_always_propagates(self):
        # a misconfigured spec is the caller's bug, not a fault
        with pytest.raises(ConfigError):
            Executor(jobs=1, cache=False).run([_BoomSpec(exc=ConfigError)])
