"""Report-formatting tests."""

from repro.harness.report import (
    bar_chart,
    format_relative,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, "x"], [22, "y"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "22" in text and "y" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6], [0.0001]])
        assert "0.123" in text
        assert "12,346" in text
        assert "1.00e-04" in text

    def test_column_alignment_consistent(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestFormatRelative:
    def test_none(self):
        assert format_relative(None) == "n/a"

    def test_zero(self):
        assert format_relative(0.0) == "0"

    def test_small_uses_scientific(self):
        assert "e" in format_relative(0.0003)

    def test_ordinary(self):
        assert format_relative(0.25) == "0.250"


class TestFormatSeries:
    def test_points(self):
        text = format_series("si", [1, 2], [1.0, 1.9])
        assert text.startswith("si:")
        assert "1=1.000" in text and "2=1.900" in text


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"a": 100.0, "b": 50.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"


class TestLineChart:
    def test_marks_and_axis(self):
        from repro.harness.report import line_chart

        text = line_chart({"SI": [1, 4], "2PL": [1, 2]}, [1, 8],
                          width=20, height=6)
        assert "S" in text and "2" in text
        assert "S=SI" in text and "2=2PL" in text
        assert "8" in text.splitlines()[-2]

    def test_collision_marker(self):
        from repro.harness.report import line_chart

        text = line_chart({"aa": [5.0], "bb": [5.0]}, [1],
                          width=10, height=4)
        assert "*" in text

    def test_empty(self):
        from repro.harness.report import line_chart

        assert "(no data)" in line_chart({}, [])

    def test_title(self):
        from repro.harness.report import line_chart

        text = line_chart({"x": [1.0]}, [1], title="T")
        assert text.splitlines()[0] == "T"
