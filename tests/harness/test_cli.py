"""CLI tests."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig6", "fig7", "fig8",
                        "table1", "table2", "overheads", "all"):
            assert parser.parse_args([command]).command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_profile_choices(self):
        args = build_parser().parse_args(["fig1", "--profile", "full"])
        assert args.profile == "full"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--profile", "huge"])

    def test_workload_filter(self):
        args = build_parser().parse_args(
            ["fig7", "--workloads", "array", "list"])
        assert args.workloads == ["array", "list"]

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--jobs", "4", "--no-cache", "--refresh",
             "--cache-dir", "/tmp/x"])
        assert args.jobs == 4
        assert args.no_cache and args.refresh
        assert args.cache_dir == "/tmp/x"

    def test_jobs_default_serial(self):
        assert build_parser().parse_args(["fig7"]).jobs == 1

    def test_seeds_plumbed_everywhere(self):
        for command in ("fig1", "fig7", "fig8", "claims"):
            args = build_parser().parse_args([command, "--seeds", "5"])
            assert args.seeds == 5

    def test_cache_command(self):
        args = build_parser().parse_args(["cache", "--clear"])
        assert args.command == "cache" and args.clear


class TestExecution:
    def test_fig2_prints_table(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "SI-TM" in out and "TX3" in out

    def test_fig6_prints_table(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "SSI-TM" in out

    def test_table1_prints_parameters(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CPU Cores" in out and "32" in out

    def test_overheads_prints_percentages(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "12.5" in out and "50.0" in out

    def test_fig7_restricted_run(self, capsys):
        code = main(["fig7", "--profile", "test", "--seeds", "1",
                     "--workloads", "rbtree"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rbtree" in out and "SI-TM/2PL" in out


class TestFaultsCommand:
    def test_parser_accepts_faults_flags(self):
        args = build_parser().parse_args(
            ["faults", "--list", "--no-escalation", "--seeds", "2"])
        assert args.command == "faults"
        assert args.list and args.no_escalation and args.seeds == 2

    def test_parser_accepts_timeout(self):
        assert build_parser().parse_args(
            ["fig7", "--timeout", "30"]).timeout == 30.0
        with pytest.raises(SystemExit):
            main(["fig7", "--timeout", "-1"])

    def test_faults_list_names_every_site(self, capsys):
        from repro.faults import FAULT_SITES
        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        for site in FAULT_SITES:
            assert site["site"] in out

    def test_fuzz_faults_flag_parsed(self):
        args = build_parser().parse_args(["fuzz", "--faults"])
        assert args.faults

    def test_quarantined_spec_renders_failed_cell_and_exits_1(
            self, monkeypatch, capsys):
        # a worker crash mid-grid must yield a completed grid with an
        # explicit FAILED cell and a non-zero exit, never a traceback
        from repro.harness.cli import Executor as CliExecutor
        from repro.harness.executor import RunFailure
        real_run = CliExecutor.run

        def sabotaged(self, specs):
            results = real_run(self, specs)
            victim = next(iter(results))
            failure = RunFailure(
                spec=str(victim), spec_hash="0" * 24, kind="crash",
                message="worker died (SIGKILL)", attempts=2)
            self.failures.append(failure)
            results[victim] = failure
            return results

        monkeypatch.setattr(CliExecutor, "run", sabotaged)
        code = main(["fig7", "--profile", "test", "--seeds", "1",
                     "--workloads", "rbtree", "--no-cache"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "[failures] 1 spec(s) quarantined" in out
        assert "worker died (SIGKILL)" in out


class TestExecutorIntegration:
    def test_fig7_cached_rerun_identical(self, tmp_path, capsys):
        argv = ["fig7", "--profile", "test", "--seeds", "1",
                "--workloads", "rbtree", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache-misses=9" in first  # 3 thread counts x 3 systems
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "hit-rate=100%" in second
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("[executor]")]
        assert strip(first) == strip(second)

    def test_no_cache_flag_respected(self, tmp_path, capsys):
        argv = ["fig7", "--profile", "test", "--seeds", "1",
                "--workloads", "rbtree", "--no-cache",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("*.json"))

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        run = ["fig7", "--profile", "test", "--seeds", "1",
               "--workloads", "rbtree", "--cache-dir", str(tmp_path)]
        assert main(run) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "9" in out
        assert main(["cache", "--clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "9 entries removed" in out
        assert not list(tmp_path.glob("*.json"))


class TestExportFlags:
    def test_fig1_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "fig1.csv"
        json_path = tmp_path / "fig1.json"
        code = main(["fig1", "--profile", "test", "--threads", "2",
                     "--seeds", "1", "--csv", str(csv_path),
                     "--json", str(json_path)])
        assert code == 0
        assert "workload" in csv_path.read_text()
        import json as json_module

        rows = json_module.loads(json_path.read_text())
        assert any(r["workload"] == "list" for r in rows)

    def test_fig8_chart_flag(self, capsys):
        code = main(["fig8", "--profile", "test", "--seeds", "1",
                     "--workloads", "rbtree", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "|" in out  # the chart's y-axis


class TestBackendAliases:
    def test_systems_accepts_aliases_per_item(self):
        args = build_parser().parse_args(
            ["fig7", "--systems", "sitm", "2pl", "SSI"])
        assert args.systems == ["SI-TM", "2PL", "SSI-TM"]

    def test_systems_rejects_all_and_unknown(self, capsys):
        for bad in ("all", "nosuch"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["fig7", "--systems", bad])
            assert "error" in capsys.readouterr().err

    def test_backend_alias_reaches_every_consumer(self):
        for command in ("trace", "metrics", "profile", "bench", "fuzz"):
            args = build_parser().parse_args(
                [command, "--backend", "logtm"])
            assert args.backend == "LogTM"


class TestConfigErrorReporting:
    """Unknown names exit non-zero with one stderr line, no traceback."""

    @pytest.mark.parametrize("argv", [
        ["metrics", "--experiment", "nosuch"],
        ["trace", "--experiment", "nosuch"],
        ["profile", "--experiment", "nosuch"],
        ["metrics", "--experiment", "rbtree", "--workloads", "nosuchwl"],
    ])
    def test_unknown_names_one_line_error(self, argv, capsys):
        assert main(argv + ["--no-cache"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err and "Traceback" not in err


class TestProfileCommand:
    def test_profile_prints_attribution_and_heatmap(self, tmp_path,
                                                    capsys):
        stacks = tmp_path / "stacks.txt"
        assert main(["profile", "--experiment", "rbtree", "--backend",
                     "sitm", "--profile", "test", "--threads", "4",
                     "--stacks", str(stacks), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Cycle attribution" in out
        assert "Conflict heatmap" in out
        assert "total charged cycles" in out
        lines = stacks.read_text().splitlines()
        assert lines and all(line.rsplit(" ", 1)[1].isdigit()
                             for line in lines)


class TestBenchCommand:
    def _run(self, label, bench_dir, extra=()):
        return main(["bench", "--suite", "smoke", "--label", label,
                     "--bench-out", str(bench_dir), "--no-cache",
                     *extra])

    def test_bench_writes_valid_artifact(self, tmp_path, capsys):
        from repro.perf import load_artifact
        assert self._run("one", tmp_path) == 0
        out = capsys.readouterr().out
        assert "bench artifact written" in out
        artifact = load_artifact(tmp_path / "BENCH_one.json")
        assert artifact["suite"] == "smoke"

    def test_compare_identical_passes(self, tmp_path, capsys):
        self._run("one", tmp_path)
        self._run("two", tmp_path)
        capsys.readouterr()
        assert main(["bench", "--compare",
                     str(tmp_path / "BENCH_one.json"),
                     str(tmp_path / "BENCH_two.json")]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_injected_regression_fails(self, tmp_path, capsys):
        import json

        self._run("one", tmp_path)
        self._run("two", tmp_path)
        path = tmp_path / "BENCH_two.json"
        artifact = json.loads(path.read_text())
        for cell in artifact["deterministic"].values():
            cell["throughput"] *= 0.5
        path.write_text(json.dumps(artifact))
        capsys.readouterr()
        assert main(["bench", "--compare",
                     str(tmp_path / "BENCH_one.json"), str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_compare_invalid_artifact_one_line_error(self, tmp_path,
                                                     capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        assert main(["bench", "--compare", str(bad), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_backend_filter(self, tmp_path, capsys):
        assert self._run("si", tmp_path,
                         extra=["--backend", "sitm"]) == 0
        capsys.readouterr()
        assert self._run("no", tmp_path,
                         extra=["--backend", "logtm"]) == 2
        assert "no LogTM cells" in capsys.readouterr().err
