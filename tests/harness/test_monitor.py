"""Campaign monitor and live watch plumbing.

Covers the three layers separately and end to end: the
:class:`CampaignMonitor` state machine on a synthetic event stream
(injectable clock, no sleeping), the executor's event emission paths
(inline, pool relay, cache hits), and the ``sitm-harness watch`` /
``--progress`` CLI surfaces including the streamed time-series
artifact.
"""

import io

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.executor import Executor
from repro.harness.spec import ExperimentSpec
from repro.obs import CampaignMonitor, sparkline, validate_timeseries
from repro.obs.monitor import SPARK_BLOCKS

TELEMETRY_SPECS = [
    ExperimentSpec("rbtree", "SI-TM", 2, seed, "test", telemetry=True)
    for seed in (1, 2)]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def feed_lifecycle(monitor, spec="cell-a", clock=None, windows=2):
    monitor({"event": "spec-start", "spec": spec})
    if clock is not None:
        clock.now += 2.0
    for index in range(windows):
        monitor({"event": "window", "spec": spec, "window": index,
                 "commits": 10, "aborts": 2, "abort_rate": 2 / 12,
                 "start_cycle": index * 500,
                 "end_cycle": (index + 1) * 500})
    monitor({"event": "spec-done", "spec": spec, "commits": 20,
             "aborts": 4, "abort_rate": 4 / 24,
             "makespan_cycles": 1_000})


class TestSparkline:
    def test_ramp(self):
        assert sparkline([0.0, 1.0]) == SPARK_BLOCKS[0] + SPARK_BLOCKS[-1]
        assert len(sparkline([0.2] * 10)) == 10

    def test_clamps_out_of_range(self):
        assert sparkline([-5.0, 5.0]) == SPARK_BLOCKS[0] + SPARK_BLOCKS[-1]

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1.0, hi=1.0)


class TestMonitorStateMachine:
    def test_lifecycle_counts_and_eta(self):
        clock = FakeClock()
        monitor = CampaignMonitor(clock=clock)
        monitor({"event": "grid-start", "total": 3})
        assert monitor.total == 3
        feed_lifecycle(monitor, "cell-a", clock)
        monitor({"event": "spec-cached", "spec": "cell-b"})
        counts = monitor.counts()
        assert counts == {"done": 1, "running": 0, "cached": 1,
                          "failed": 0, "pending": 1}
        # one pending cell at ~2s per executed cell
        assert monitor.eta_seconds() == pytest.approx(2.0)
        cell = monitor.cells["cell-a"]
        assert cell.state == "done"
        assert cell.windows == 2
        assert cell.commits == 20  # spec-done total wins over windows
        assert cell.makespan == 1_000

    def test_failure_and_alert_tracking(self):
        monitor = CampaignMonitor(clock=FakeClock())
        monitor({"event": "spec-start", "spec": "cell-x"})
        monitor({"event": "alert", "spec": "cell-x", "rule":
                 "LivelockSuspected", "window": 3, "detail": "stuck"})
        monitor({"event": "spec-failed", "spec": "cell-x",
                 "kind": "crash", "flight": "results/flight/f.json"})
        cell = monitor.cells["cell-x"]
        assert cell.state == "failed" and cell.kind == "crash"
        assert cell.alerts == 1
        view = monitor.render()
        assert "failed:crash" in view
        assert "flight: results/flight/f.json" in view
        assert "ALERT LivelockSuspected @ window 3" in view
        assert "1 alert(s)" in monitor.status_line()

    def test_sparkline_tracks_recent_windows_only(self):
        monitor = CampaignMonitor(clock=FakeClock())
        for index in range(40):
            monitor({"event": "window", "spec": "cell",
                     "window": index, "commits": 1, "aborts": 0,
                     "abort_rate": 0.0})
        assert len(monitor.cells["cell"].rates) == 24

    def test_ignores_junk_events(self):
        monitor = CampaignMonitor(clock=FakeClock())
        monitor("not a dict")
        monitor({"event": "from-the-future"})
        monitor({})
        assert monitor.cells == {}

    def test_rejects_bad_style_and_interval(self):
        with pytest.raises(ValueError):
            CampaignMonitor(style="holographic")
        with pytest.raises(ValueError):
            CampaignMonitor(interval=-1.0)


class TestMonitorOutput:
    def test_line_style_rate_limited_but_forced_events_print(self):
        clock = FakeClock()
        stream = io.StringIO()
        monitor = CampaignMonitor(stream=stream, style="line",
                                  interval=10.0, clock=clock)
        feed_lifecycle(monitor, "cell-a", clock)  # within one interval
        assert len(stream.getvalue().splitlines()) == 1
        monitor({"event": "spec-failed", "spec": "cell-b",
                 "kind": "timeout"})  # forced: bypasses the interval
        assert len(stream.getvalue().splitlines()) == 2

    def test_screen_style_redraws_the_table(self):
        stream = io.StringIO()
        monitor = CampaignMonitor(stream=stream, style="screen",
                                  interval=0.0, clock=FakeClock())
        feed_lifecycle(monitor, "cell-a")
        output = stream.getvalue()
        assert "\x1b[H" in output and "cell-a" in output

    def test_broken_stream_silences_not_raises(self):
        closed = io.StringIO()
        closed.close()
        monitor = CampaignMonitor(stream=closed, style="line",
                                  interval=0.0, clock=FakeClock())
        feed_lifecycle(monitor, "cell-a")  # must not raise
        assert monitor.stream is None
        assert monitor.events_seen > 0


class TestExecutorEvents:
    def collect(self):
        events = []
        return events, events.append

    def test_inline_run_streams_lifecycle_and_windows(self):
        events, sink = self.collect()
        Executor(jobs=1, cache=False, monitor=sink).run(TELEMETRY_SPECS)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "grid-start" and kinds[-1] == "grid-end"
        assert kinds.count("spec-start") == len(TELEMETRY_SPECS)
        assert kinds.count("spec-done") == len(TELEMETRY_SPECS)
        assert "window" in kinds
        # every window/done event is stamped with its spec identity
        specs = {str(spec) for spec in TELEMETRY_SPECS}
        for event in events:
            if event["event"] in ("window", "spec-done"):
                assert event["spec"] in specs

    def test_pool_run_relays_worker_events_to_parent(self):
        events, sink = self.collect()
        Executor(jobs=2, cache=False, monitor=sink).run(TELEMETRY_SPECS)
        kinds = [event["event"] for event in events]
        assert kinds.count("spec-done") == len(TELEMETRY_SPECS)
        assert "window" in kinds  # crossed the process boundary

    def test_cache_hits_are_announced(self, tmp_path):
        events, sink = self.collect()
        executor = Executor(jobs=1, cache=True, cache_dir=tmp_path,
                            monitor=sink)
        executor.run(TELEMETRY_SPECS)
        events.clear()
        executor.run(TELEMETRY_SPECS)
        kinds = [event["event"] for event in events]
        assert kinds.count("spec-cached") == len(TELEMETRY_SPECS)
        assert "spec-start" not in kinds

    def test_broken_monitor_never_breaks_the_grid(self):
        def exploding(event):
            raise RuntimeError("monitor bug")

        results = Executor(jobs=1, cache=False,
                           monitor=exploding).run(TELEMETRY_SPECS)
        for spec in TELEMETRY_SPECS:
            assert not getattr(results[spec], "failed", False)


class TestWatchCli:
    def test_parser_accepts_watch_flags(self):
        args = build_parser().parse_args(
            ["watch", "--experiment", "rbtree", "--headless",
             "--series-out", "series.jsonl", "--crash-cell"])
        assert args.command == "watch"
        assert args.headless and args.crash_cell
        assert args.series_out == "series.jsonl"

    def test_headless_watch_writes_a_valid_series(self, tmp_path,
                                                  capsys):
        series = tmp_path / "series.jsonl"
        code = main(["watch", "--experiment", "rbtree",
                     "--profile", "test", "--threads", "2",
                     "--seeds", "2", "--headless", "--no-cache",
                     "--series-out", str(series)])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 2 cell(s) seen of 2" in out
        assert "time series written" in out
        text = series.read_text()
        assert validate_timeseries(text) == []
        assert '"kind": "window"' in text

    def test_watch_crash_cell_quarantines_with_flight(self, capsys):
        code = main(["watch", "--experiment", "rbtree",
                     "--profile", "test", "--threads", "2",
                     "--headless", "--no-cache", "--crash-cell"])
        assert code == 1  # a failed cell fails the invocation
        out = capsys.readouterr().out
        assert "failed:crash" in out
        assert "[failures] 1 spec(s) quarantined" in out
        assert "flight recorder:" in out

    def test_progress_flag_reports_on_stderr(self, capsys):
        code = main(["fig7", "--workloads", "array", "--profile",
                     "test", "--threads", "2", "--seeds", "1",
                     "--no-cache", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[progress]" in err
        assert "done" in err and "failed 0" in err
