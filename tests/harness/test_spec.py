"""ExperimentSpec tests: canonical form, hashing, round trips, grids."""

import json

import pytest

from repro.common.config import MVMConfig, SimConfig, VersionCapPolicy
from repro.harness.spec import ExperimentSpec, grid, seed_specs


class TestCanonicalForm:
    def test_json_round_trip(self):
        spec = ExperimentSpec("rbtree", "SI-TM", 8, 3, "quick")
        recovered = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec

    def test_config_round_trip(self):
        config = SimConfig(mvm=MVMConfig(
            cap_policy=VersionCapPolicy.UNBOUNDED, census=True))
        spec = ExperimentSpec("list", "SI-TM", 4, 1, "test", config)
        recovered = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        assert recovered.config.mvm.census is True

    def test_default_config_stays_none(self):
        spec = ExperimentSpec("list", "2PL", 2, 1)
        assert spec.to_dict()["config"] is None
        assert ExperimentSpec.from_dict(spec.to_dict()).config is None

    def test_hashable_dict_key(self):
        a = ExperimentSpec("list", "2PL", 2, 1, "test")
        b = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert {a: 1}[b] == 1


class TestSpecHash:
    def test_stable_across_instances(self):
        a = ExperimentSpec("list", "2PL", 2, 1, "test")
        b = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert a.spec_hash() == b.spec_hash()

    def test_every_field_matters(self):
        base = ExperimentSpec("list", "2PL", 2, 1, "test")
        variants = [
            ExperimentSpec("rbtree", "2PL", 2, 1, "test"),
            ExperimentSpec("list", "SI-TM", 2, 1, "test"),
            ExperimentSpec("list", "2PL", 4, 1, "test"),
            ExperimentSpec("list", "2PL", 2, 2, "test"),
            ExperimentSpec("list", "2PL", 2, 1, "quick"),
            ExperimentSpec("list", "2PL", 2, 1, "test",
                           SimConfig(compute_cycles=2)),
        ]
        hashes = {spec.spec_hash() for spec in variants}
        assert base.spec_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_config_fingerprint_feeds_hash(self):
        default_config = ExperimentSpec("list", "2PL", 2, 1, "test",
                                        SimConfig())
        tweaked = ExperimentSpec("list", "2PL", 2, 1, "test",
                                 SimConfig(txn_overhead_cycles=5))
        assert default_config.spec_hash() != tweaked.spec_hash()


class TestRun:
    def test_run_matches_run_once(self):
        from repro.harness.runner import run_once

        spec = ExperimentSpec("rbtree", "SI-TM", 2, 1, "test")
        assert spec.run() == run_once("rbtree", "SI-TM", 2, 1, "test")


class TestGridHelpers:
    def test_seed_specs_consecutive(self):
        specs = seed_specs("list", "2PL", 2, "test", seeds=3, seed0=5)
        assert [s.seed for s in specs] == [5, 6, 7]
        assert all(s.workload == "list" for s in specs)

    def test_grid_shape_and_order(self):
        specs = grid(["a", "b"], ["2PL", "SI-TM"], (2, 4), "test", seeds=2)
        assert len(specs) == 2 * 2 * 2 * 2
        # row-major: workload outermost, seeds innermost
        assert specs[0] == ExperimentSpec("a", "2PL", 2, 1, "test")
        assert specs[1] == ExperimentSpec("a", "2PL", 2, 2, "test")
        assert specs[-1] == ExperimentSpec("b", "SI-TM", 4, 2, "test")

    def test_grid_deterministic(self):
        args = (["x"], ["2PL"], (2,), "test")
        assert grid(*args) == grid(*args)
