"""ExperimentSpec tests: canonical form, hashing, round trips, grids."""

import json

import pytest

from repro.common.config import MVMConfig, SimConfig, VersionCapPolicy
from repro.harness.spec import ExperimentSpec, grid, seed_specs


class TestCanonicalForm:
    def test_json_round_trip(self):
        spec = ExperimentSpec("rbtree", "SI-TM", 8, 3, "quick")
        recovered = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec

    def test_config_round_trip(self):
        config = SimConfig(mvm=MVMConfig(
            cap_policy=VersionCapPolicy.UNBOUNDED, census=True))
        spec = ExperimentSpec("list", "SI-TM", 4, 1, "test", config)
        recovered = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        assert recovered.config.mvm.census is True

    def test_default_config_stays_none(self):
        spec = ExperimentSpec("list", "2PL", 2, 1)
        assert spec.to_dict()["config"] is None
        assert ExperimentSpec.from_dict(spec.to_dict()).config is None

    def test_hashable_dict_key(self):
        a = ExperimentSpec("list", "2PL", 2, 1, "test")
        b = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert {a: 1}[b] == 1


class TestFaultsOnSpecs:
    """``faults=None`` must be invisible: pre-existing spec hashes (and
    therefore every cached result and ``BENCH_baseline.json``) survive
    the introduction of fault injection."""

    def test_plain_spec_dict_omits_faults(self):
        spec = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert "faults" not in spec.to_dict()
        assert "faults" not in json.loads(
            ExperimentSpec("list", "2PL", 2, 1, "test",
                           SimConfig()).canonical_json())["config"]

    def test_plain_spec_hash_is_pinned(self):
        # the literal pre-faults hash: if this moves, every cached
        # result and bench baseline silently mismatches — change it
        # only with a deliberate cache-busting commit
        spec = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert spec.canonical_json() == (
            '{"config":null,"profile":"test","seed":1,"system":"2PL",'
            '"threads":2,"workload":"list"}')
        assert spec.spec_hash() == "408bb8a41bb83ee4f1d0e688"

    def test_faulted_spec_round_trips(self):
        from repro.faults import FaultPlan
        plan = FaultPlan(abort_rate=0.5, overflow_at_commits=(1, 3))
        spec = ExperimentSpec("list", "SI-TM", 2, 1, "test", faults=plan)
        recovered = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        assert recovered.faults.overflow_at_commits == (1, 3)
        assert "/faults" in str(spec)

    def test_faults_feed_the_hash(self):
        from repro.faults import FaultPlan
        plain = ExperimentSpec("list", "SI-TM", 2, 1, "test")
        faulted = ExperimentSpec("list", "SI-TM", 2, 1, "test",
                                 faults=FaultPlan(abort_rate=0.5))
        assert plain.spec_hash() != faulted.spec_hash()

    def test_faulted_spec_cache_round_trip(self, tmp_path):
        from repro.faults import FaultPlan
        from repro.harness.executor import ResultCache
        from repro.sim.retry import RetryPolicy
        config = SimConfig(retry=RetryPolicy(attempt_budget=3,
                                             stall_budget=8,
                                             starvation_age_cycles=20_000))
        spec = ExperimentSpec("list", "SI-TM", 2, 1, "test", config,
                              faults=FaultPlan(abort_rate=0.5))
        cache = ResultCache(tmp_path)
        result = spec.run()
        cache.store(spec, result)
        assert cache.load(spec) == result


class TestSpecHash:
    def test_stable_across_instances(self):
        a = ExperimentSpec("list", "2PL", 2, 1, "test")
        b = ExperimentSpec("list", "2PL", 2, 1, "test")
        assert a.spec_hash() == b.spec_hash()

    def test_every_field_matters(self):
        base = ExperimentSpec("list", "2PL", 2, 1, "test")
        variants = [
            ExperimentSpec("rbtree", "2PL", 2, 1, "test"),
            ExperimentSpec("list", "SI-TM", 2, 1, "test"),
            ExperimentSpec("list", "2PL", 4, 1, "test"),
            ExperimentSpec("list", "2PL", 2, 2, "test"),
            ExperimentSpec("list", "2PL", 2, 1, "quick"),
            ExperimentSpec("list", "2PL", 2, 1, "test",
                           SimConfig(compute_cycles=2)),
        ]
        hashes = {spec.spec_hash() for spec in variants}
        assert base.spec_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_config_fingerprint_feeds_hash(self):
        default_config = ExperimentSpec("list", "2PL", 2, 1, "test",
                                        SimConfig())
        tweaked = ExperimentSpec("list", "2PL", 2, 1, "test",
                                 SimConfig(txn_overhead_cycles=5))
        assert default_config.spec_hash() != tweaked.spec_hash()


class TestRun:
    def test_run_matches_run_once(self):
        from repro.harness.runner import run_once

        spec = ExperimentSpec("rbtree", "SI-TM", 2, 1, "test")
        assert spec.run() == run_once("rbtree", "SI-TM", 2, 1, "test")


class TestGridHelpers:
    def test_seed_specs_consecutive(self):
        specs = seed_specs("list", "2PL", 2, "test", seeds=3, seed0=5)
        assert [s.seed for s in specs] == [5, 6, 7]
        assert all(s.workload == "list" for s in specs)

    def test_grid_shape_and_order(self):
        specs = grid(["a", "b"], ["2PL", "SI-TM"], (2, 4), "test", seeds=2)
        assert len(specs) == 2 * 2 * 2 * 2
        # row-major: workload outermost, seeds innermost
        assert specs[0] == ExperimentSpec("a", "2PL", 2, 1, "test")
        assert specs[1] == ExperimentSpec("a", "2PL", 2, 2, "test")
        assert specs[-1] == ExperimentSpec("b", "SI-TM", 4, 2, "test")

    def test_grid_deterministic(self):
        args = (["x"], ["2PL"], (2,), "test")
        assert grid(*args) == grid(*args)
