"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.tm.ops import Read, Write


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point result cache and fuzz output at throwaway directories.

    Tests exercising the CLI, executor, fuzzer or bench runner with
    default settings must not write into the repository's
    ``results/.cache``, ``results/fuzz`` or ``results/bench``.
    """
    monkeypatch.setenv("SITM_CACHE_DIR", str(tmp_path / "result-cache"))
    monkeypatch.setenv("SITM_FUZZ_DIR", str(tmp_path / "fuzz"))
    monkeypatch.setenv("SITM_BENCH_DIR", str(tmp_path / "bench"))
    monkeypatch.setenv("SITM_FLIGHT_DIR", str(tmp_path / "flight"))


@pytest.fixture
def machine() -> Machine:
    """A cold machine with default (Table 1) configuration."""
    return Machine()


@pytest.fixture
def rng() -> SplitRandom:
    """A deterministic root RNG."""
    return SplitRandom(1234)


def drive_plain(machine: Machine, gen):
    """Run a transaction-body generator directly against plain memory.

    Applies reads/writes immediately with no transactional semantics —
    used to test structure algorithms sequentially.
    """
    result = None
    try:
        op = next(gen)
        while True:
            if isinstance(op, Read):
                op = gen.send(machine.plain_load(op.addr))
            elif isinstance(op, Write):
                machine.plain_store(op.addr, op.value)
                op = gen.send(None)
            else:
                op = gen.send(None)
    except StopIteration as stop:
        result = stop.value
    return result


def run_program(machine: Machine, system: str, programs, seed: int = 7,
                tracer=None, promote_sites=None):
    """Run per-thread spec lists under the named system; return stats."""
    tm = SYSTEMS[system](machine, SplitRandom(seed))
    engine = Engine(tm, programs, tracer=tracer, promote_sites=promote_sites)
    return engine.run()


def single_thread(machine: Machine, system: str, bodies, seed: int = 7):
    """Run a list of transaction bodies on one thread; return stats."""
    specs = [TransactionSpec(body, f"t{i}") for i, body in enumerate(bodies)]
    return run_program(machine, system, [specs], seed)


def spec(body, label: str = "txn") -> TransactionSpec:
    """Shorthand TransactionSpec constructor."""
    return TransactionSpec(body, label)
