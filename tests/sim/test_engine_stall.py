"""Engine NACK/redo handling, tested with a scripted TM stub."""

import pytest

from repro.common.errors import AbortCause
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm.api import StallRequested, TMSystem, Txn
from repro.tm.ops import Read, Write


class ScriptedTM(TMSystem):
    """Stalls the first N reads, then behaves like a trivial TM."""

    name = "scripted"

    def __init__(self, machine, rng, stalls_before_success=3):
        super().__init__(machine, rng)
        self.remaining_stalls = stalls_before_success
        self.read_calls = 0
        self.redo_values = []

    def begin(self, thread_id, label, attempt):
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, 1

    def read(self, txn, addr, promote=False):
        self.read_calls += 1
        if self.remaining_stalls > 0:
            self.remaining_stalls -= 1
            raise StallRequested(7)
        return self.machine.plain_load(addr), 2

    def write(self, txn, addr, value):
        self.machine.plain_store(addr, value)
        return 2

    def commit(self, txn, now):
        self._deregister(txn)
        return 1

    def abort(self, txn, cause):
        self._deregister(txn)
        return 1


class TestStallRedo:
    def _run(self, stalls):
        machine = Machine()
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 41)
        observed = []

        def body():
            value = yield Read(addr)
            observed.append(value)
            yield Write(addr, value + 1)

        tm = ScriptedTM(machine, SplitRandom(1),
                        stalls_before_success=stalls)
        stats = Engine(tm, [[TransactionSpec(body, "t")]]).run()
        return machine, tm, stats, observed

    def test_stalled_read_retried_until_success(self):
        machine, tm, stats, observed = self._run(stalls=3)
        assert tm.read_calls == 4          # 3 NACKs + 1 success
        assert observed == [41]            # the value arrived exactly once
        assert machine.plain_load(machine.heap._mvm._base) in (41, 42)
        assert stats.total_commits == 1
        assert stats.total_aborts == 0

    def test_stall_cycles_charged(self):
        _, _, stalled, _ = self._run(stalls=5)
        _, _, clean, _ = self._run(stalls=0)
        assert stalled.makespan_cycles >= clean.makespan_cycles + 5 * 7

    def test_redo_cleared_on_abort(self):
        """A doom arriving while an op is pending for redo must not leak
        the stale op into the retried attempt."""
        machine = Machine()
        addr = machine.mvmalloc(1)
        attempts = []

        class DoomingTM(ScriptedTM):
            def read(self, txn, addr_, promote=False):
                self.read_calls += 1
                if self.read_calls == 1:
                    raise StallRequested(5)
                if self.read_calls == 2:
                    txn.doom(AbortCause.READ_WRITE)
                    raise StallRequested(5)
                return 7, 1

        def body():
            attempts.append("start")
            value = yield Read(addr)
            yield Write(addr, value)

        tm = DoomingTM(machine, SplitRandom(1), stalls_before_success=0)
        stats = Engine(tm, [[TransactionSpec(body, "t")]]).run()
        assert stats.total_aborts == 1
        assert stats.total_commits == 1
        assert attempts == ["start", "start"]  # body restarted cleanly


class TestHeapLazyDeletion:
    """The scheduler heap must not leak dead entries under reschedule
    storms.

    The lazy-deletion scheme keeps at most one *live* entry per thread:
    a popped entry whose clock no longer matches the thread's
    ``queued_clock`` is dropped, never re-pushed.  Re-pushing stale
    entries (the regression this pins) makes the heap grow by one dead
    entry per reschedule, which a begin-stall storm turns into thousands
    of extra pushes.  The invariant is ``pushes <= steps + threads``:
    one push per step that reschedules, plus the initial heapify.
    """

    THREADS = 4

    def _storm_engine(self, retry):
        from repro.common.config import SimConfig
        from repro.faults import FaultPlan
        from repro.sim.retry import RetryPolicy
        from repro.tm import SYSTEMS

        plan = FaultPlan(begin_stall_rate=0.85, begin_stall_burst=4,
                         seed=3)
        policy = None
        if retry:
            policy = RetryPolicy(attempt_budget=3, stall_budget=4,
                                 starvation_age_cycles=2000)
        machine = Machine(SimConfig(faults=plan, retry=policy))
        wpl = machine.address_map.words_per_line
        base = machine.mvmalloc(self.THREADS * wpl)
        programs = []
        for tid in range(self.THREADS):
            def body(tid=tid):
                value = yield Read(base + tid * wpl)
                yield Write(base + tid * wpl, value + 1)
            programs.append([TransactionSpec(body, "stormy")
                             for _ in range(6)])
        return Engine(SYSTEMS["SI-TM"](machine, SplitRandom(5)),
                      programs)

    @pytest.mark.parametrize("retry", [False, True],
                             ids=["storm", "storm+escalation"])
    def test_push_bound_holds_under_begin_stall_storm(self, retry):
        engine = self._storm_engine(retry)
        stats = engine.run(max_steps=200_000)
        # the storm stalls begins constantly, so every thread is
        # rescheduled over and over — exactly the shape that leaked
        # dead entries before lazy deletion dropped stale pops
        assert stats.total_commits == self.THREADS * 6
        assert engine._heap_pushes <= engine.steps_taken + self.THREADS
        if retry:
            # the tight policy escalates under the storm, exercising
            # the externally-moved-clock requeue path as well
            assert stats.escalations > 0

    @pytest.mark.parametrize("retry", [False, True],
                             ids=["storm", "storm+escalation"])
    def test_storm_runs_are_deterministic(self, retry):
        first = self._storm_engine(retry)
        second = self._storm_engine(retry)
        stats1 = first.run(max_steps=200_000)
        stats2 = second.run(max_steps=200_000)
        assert stats1.to_dict() == stats2.to_dict()
        assert first.steps_taken == second.steps_taken
        assert first._heap_pushes == second._heap_pushes
