"""Engine NACK/redo handling, tested with a scripted TM stub."""

import pytest

from repro.common.errors import AbortCause
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm.api import StallRequested, TMSystem, Txn
from repro.tm.ops import Read, Write


class ScriptedTM(TMSystem):
    """Stalls the first N reads, then behaves like a trivial TM."""

    name = "scripted"

    def __init__(self, machine, rng, stalls_before_success=3):
        super().__init__(machine, rng)
        self.remaining_stalls = stalls_before_success
        self.read_calls = 0
        self.redo_values = []

    def begin(self, thread_id, label, attempt):
        txn = Txn(thread_id, label, attempt)
        self._register(txn)
        return txn, 1

    def read(self, txn, addr, promote=False):
        self.read_calls += 1
        if self.remaining_stalls > 0:
            self.remaining_stalls -= 1
            raise StallRequested(7)
        return self.machine.plain_load(addr), 2

    def write(self, txn, addr, value):
        self.machine.plain_store(addr, value)
        return 2

    def commit(self, txn, now):
        self._deregister(txn)
        return 1

    def abort(self, txn, cause):
        self._deregister(txn)
        return 1


class TestStallRedo:
    def _run(self, stalls):
        machine = Machine()
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 41)
        observed = []

        def body():
            value = yield Read(addr)
            observed.append(value)
            yield Write(addr, value + 1)

        tm = ScriptedTM(machine, SplitRandom(1),
                        stalls_before_success=stalls)
        stats = Engine(tm, [[TransactionSpec(body, "t")]]).run()
        return machine, tm, stats, observed

    def test_stalled_read_retried_until_success(self):
        machine, tm, stats, observed = self._run(stalls=3)
        assert tm.read_calls == 4          # 3 NACKs + 1 success
        assert observed == [41]            # the value arrived exactly once
        assert machine.plain_load(machine.heap._mvm._base) in (41, 42)
        assert stats.total_commits == 1
        assert stats.total_aborts == 0

    def test_stall_cycles_charged(self):
        _, _, stalled, _ = self._run(stalls=5)
        _, _, clean, _ = self._run(stalls=0)
        assert stalled.makespan_cycles >= clean.makespan_cycles + 5 * 7

    def test_redo_cleared_on_abort(self):
        """A doom arriving while an op is pending for redo must not leak
        the stale op into the retried attempt."""
        machine = Machine()
        addr = machine.mvmalloc(1)
        attempts = []

        class DoomingTM(ScriptedTM):
            def read(self, txn, addr_, promote=False):
                self.read_calls += 1
                if self.read_calls == 1:
                    raise StallRequested(5)
                if self.read_calls == 2:
                    txn.doom(AbortCause.READ_WRITE)
                    raise StallRequested(5)
                return 7, 1

        def body():
            attempts.append("start")
            value = yield Read(addr)
            yield Write(addr, value)

        tm = DoomingTM(machine, SplitRandom(1), stalls_before_success=0)
        stats = Engine(tm, [[TransactionSpec(body, "t")]]).run()
        assert stats.total_aborts == 1
        assert stats.total_commits == 1
        assert attempts == ["start", "start"]  # body restarted cleanly
