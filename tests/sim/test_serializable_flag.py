"""Per-transaction serializability enforcement (section 5.1)."""

import pytest

from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program


def withdraw_programs(machine, serializable):
    checking = machine.mvmalloc(1)
    saving = machine.mvmalloc(1)
    machine.plain_store(checking, 60)
    machine.plain_store(saving, 60)

    def withdraw(from_checking):
        def body():
            c = yield Read(checking)
            s = yield Read(saving)
            yield Compute(5)
            if c + s > 100:
                if from_checking:
                    yield Write(checking, c - 100)
                else:
                    yield Write(saving, s - 100)
        return body

    programs = [
        [TransactionSpec(withdraw(True), "w1", serializable=serializable)],
        [TransactionSpec(withdraw(False), "w2", serializable=serializable)],
    ]
    return programs, checking, saving


class TestSerializableFlag:
    def test_flag_prevents_listing1_skew_under_si(self):
        for seed in range(6):
            machine = Machine()
            programs, checking, saving = withdraw_programs(machine, True)
            run_program(machine, "SI-TM", programs, seed=seed)
            total = machine.plain_load(checking) + machine.plain_load(saving)
            assert total >= 0, f"seed {seed} overdrew with the flag set"

    def test_without_flag_skew_manifests(self):
        totals = []
        for seed in range(6):
            machine = Machine()
            programs, checking, saving = withdraw_programs(machine, False)
            run_program(machine, "SI-TM", programs, seed=seed)
            totals.append(machine.plain_load(checking)
                          + machine.plain_load(saving))
        assert any(total < 0 for total in totals)

    def test_flag_is_noop_for_read_only(self):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def scan():
            yield Read(addr)

        programs = [[TransactionSpec(scan, "scan", serializable=True)]]
        stats = run_program(machine, "SI-TM", programs)
        # promoted reads of a transaction with no writes DO join
        # validation, so it is no longer commit-free... but with no
        # concurrency it must still commit cleanly
        assert stats.total_commits == 1
        assert stats.total_aborts == 0

    def test_default_is_not_serializable(self):
        spec = TransactionSpec(lambda: iter(()), "x")
        assert spec.serializable is False
