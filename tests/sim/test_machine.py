"""Machine facade tests: plain access paths over both regions."""

import pytest

from repro.common.config import SimConfig
from repro.sim.machine import Machine


class TestPlainAccess:
    def test_conventional_roundtrip(self, machine):
        addr = machine.malloc(4)
        machine.plain_store(addr, 77)
        assert machine.plain_load(addr) == 77

    def test_mvm_roundtrip(self, machine):
        addr = machine.mvmalloc(4)
        machine.plain_store(addr + 2, 55)
        assert machine.plain_load(addr + 2) == 55

    def test_mvm_unwritten_reads_zero(self, machine):
        addr = machine.mvmalloc(4)
        assert machine.plain_load(addr) == 0

    def test_mvm_store_preserves_line_neighbours(self, machine):
        addr = machine.mvmalloc(8)
        machine.plain_store(addr, 1)
        machine.plain_store(addr + 1, 2)
        assert machine.plain_load(addr) == 1
        assert machine.plain_load(addr + 1) == 2

    def test_line_data_conventional(self, machine):
        addr = machine.malloc(8)
        machine.plain_store(addr + 3, 9)
        line = machine.address_map.line_of(addr)
        assert machine.line_data(line)[3] == 9

    def test_line_data_mvm(self, machine):
        addr = machine.mvmalloc(8)
        machine.plain_store(addr + 5, 4)
        line = machine.address_map.line_of(addr)
        assert machine.line_data(line)[5] == 4

    def test_line_data_untouched_mvm_line(self, machine):
        addr = machine.mvmalloc(8)
        line = machine.address_map.line_of(addr)
        assert machine.line_data(line) == tuple([0] * 8)


class TestConstruction:
    def test_default_config(self):
        machine = Machine()
        assert machine.config.machine.cores == 32

    def test_custom_config_flows_through(self):
        config = SimConfig()
        machine = Machine(config)
        assert machine.clock.delta == config.mvm.commit_delta
        assert machine.mvm.config is config.mvm

    def test_free(self, machine):
        addr = machine.malloc(4)
        machine.free(addr)
        assert machine.malloc(4) == addr
