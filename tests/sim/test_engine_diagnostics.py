"""Engine diagnostic-dump tests: SimulationError must explain itself.

A bare "exceeded N engine steps" forces a debugger session; the dump
carries the per-thread state, retry histogram and top abort causes
needed to tell a livelock from a runaway workload at a glance.
"""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.tm.ops import Compute, Read, Write


def _engine(threads=2, txns=3):
    machine = Machine()
    addr = machine.mvmalloc(1)

    def body():
        value = yield Read(addr)
        yield Compute(2)
        yield Write(addr, value + 1)

    programs = [[TransactionSpec(body, f"bump{t}") for _ in range(txns)]
                for t in range(threads)]
    tm = SYSTEMS["SI-TM"](machine, SplitRandom(7))
    return Engine(tm, programs)


class TestMaxStepsDiagnostics:
    def test_message_names_the_limit_and_threads(self):
        engine = _engine()
        with pytest.raises(SimulationError) as excinfo:
            engine.run(max_steps=3)
        message = str(excinfo.value)
        assert "exceeded 3 engine steps" in message
        assert "thread 0:" in message and "thread 1:" in message

    def test_dump_shows_progress_counters(self):
        engine = _engine()
        with pytest.raises(SimulationError) as excinfo:
            engine.run(max_steps=3)
        message = str(excinfo.value)
        assert "commits=" in message and "aborts=" in message

    def test_successful_run_unaffected(self):
        stats = _engine().run()
        assert stats.total_commits == 6


class TestDiagnosticsMethod:
    def test_reports_thread_states(self):
        engine = _engine(threads=1, txns=1)
        engine.run()
        text = engine.diagnostics()
        assert "thread 0:" in text
        assert "done" in text
        assert "retries-to-commit" in text

    def test_reports_abort_causes_when_present(self):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr)
            yield Compute(50)
            yield Write(addr, value + 1)

        programs = [[TransactionSpec(body, "bump") for _ in range(15)]
                    for _ in range(4)]
        tm = SYSTEMS["2PL"](machine, SplitRandom(7))
        engine = Engine(tm, programs)
        stats = engine.run()
        text = engine.diagnostics()
        if stats.total_aborts:
            assert "abort causes:" in text
