"""Timeline-recorder tests."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.sim.timeline import TimelineRecorder
from repro.tm import SnapshotIsolationTM, TwoPhaseLockingTM
from repro.tm.ops import Compute, Read, Write


def run_with_timeline(system_cls, machine, programs, seed=3):
    timeline = TimelineRecorder()
    tm = system_cls(machine, SplitRandom(seed))
    engine = Engine(tm, programs, tracer=timeline)
    timeline.attach(engine)
    engine.run()
    return timeline


def counter_program(machine, threads=2, txns=10):
    addr = machine.mvmalloc(1)

    def body():
        value = yield Read(addr)
        yield Compute(3)
        yield Write(addr, value + 1)

    return [[TransactionSpec(body, "inc") for _ in range(txns)]
            for _ in range(threads)]


class TestRecording:
    def test_intervals_cover_all_attempts(self):
        machine = Machine()
        programs = counter_program(machine)
        timeline = run_with_timeline(SnapshotIsolationTM, machine, programs)
        commits = sum(1 for i in timeline.intervals if i.committed)
        assert commits == 20
        assert all(i.end >= i.start for i in timeline.intervals)

    def test_aborts_recorded_with_cause(self):
        machine = Machine()
        programs = counter_program(machine, threads=4, txns=15)
        timeline = run_with_timeline(TwoPhaseLockingTM, machine, programs)
        aborted = [i for i in timeline.intervals if not i.committed]
        assert aborted
        assert all(i.cause is not None for i in aborted)
        assert 0 < timeline.aborted_fraction() < 1

    def test_unattached_recorder_raises(self):
        machine = Machine()
        programs = counter_program(machine)
        timeline = TimelineRecorder()
        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        engine = Engine(tm, programs, tracer=timeline)
        with pytest.raises(SimulationError):
            engine.run()

    def test_makespan_positive(self):
        machine = Machine()
        timeline = run_with_timeline(SnapshotIsolationTM, machine,
                                     counter_program(machine))
        assert timeline.makespan > 0


class TestRendering:
    def test_render_shape(self):
        machine = Machine()
        timeline = run_with_timeline(SnapshotIsolationTM, machine,
                                     counter_program(machine, threads=3))
        art = timeline.render(width=60)
        lines = art.splitlines()
        assert len(lines) == 4  # header + 3 threads
        assert all(len(line.split("|")[1]) == 60 for line in lines[1:])
        assert "#" in art

    def test_aborts_visible_in_render(self):
        machine = Machine()
        timeline = run_with_timeline(
            TwoPhaseLockingTM, machine,
            counter_program(machine, threads=4, txns=20))
        assert "x" in timeline.render()

    def test_empty_render(self):
        assert "no transactions" in TimelineRecorder().render()

    def test_summary_by_label(self):
        machine = Machine()
        timeline = run_with_timeline(SnapshotIsolationTM, machine,
                                     counter_program(machine))
        summary = timeline.summary_by_label()
        assert summary["inc"]["commits"] == 20
        assert summary["inc"]["cycles"] > 0
