"""RunStats metric tests."""

from repro.common.errors import AbortCause
from repro.sim.stats import RunStats


class TestRecording:
    def test_commit_counts(self):
        stats = RunStats(2)
        stats.record_commit(0, "a", retries=0)
        stats.record_commit(1, "a", retries=2)
        assert stats.total_commits == 2
        assert stats.retry_histogram[0] == 1
        assert stats.retry_histogram[2] == 1

    def test_abort_counts_by_cause(self):
        stats = RunStats(1)
        stats.record_abort(0, "a", AbortCause.READ_WRITE)
        stats.record_abort(0, "a", AbortCause.WRITE_WRITE)
        stats.record_abort(0, "a", AbortCause.READ_WRITE)
        assert stats.total_aborts == 3
        assert stats.aborts_by(AbortCause.READ_WRITE) == 2

    def test_per_label(self):
        stats = RunStats(1)
        stats.record_commit(0, "x", 0)
        stats.record_abort(0, "y", AbortCause.WRITE_WRITE)
        assert stats.per_label["x"]["commits"] == 1
        assert stats.per_label["y"]["aborts"] == 1


class TestDerivedMetrics:
    def test_abort_rate(self):
        stats = RunStats(1)
        stats.record_commit(0, "a", 0)
        stats.record_abort(0, "a", AbortCause.WRITE_WRITE)
        assert stats.abort_rate == 0.5

    def test_abort_rate_empty(self):
        assert RunStats(1).abort_rate == 0.0

    def test_makespan(self):
        stats = RunStats(3)
        stats.threads[0].cycles = 10
        stats.threads[1].cycles = 99
        stats.threads[2].cycles = 50
        assert stats.makespan_cycles == 99

    def test_figure1_split(self):
        stats = RunStats(1)
        stats.record_abort(0, "a", AbortCause.READ_WRITE)
        stats.record_abort(0, "a", AbortCause.DANGEROUS_STRUCTURE)
        stats.record_abort(0, "a", AbortCause.WRITE_WRITE)
        stats.record_abort(0, "a", AbortCause.VERSION_OVERFLOW)
        assert stats.read_write_aborts == 2
        assert stats.write_write_aborts == 1
        assert stats.read_write_fraction() == 2 / 3

    def test_read_write_fraction_no_conflicts(self):
        assert RunStats(1).read_write_fraction() is None

    def test_summary_shape(self):
        stats = RunStats(1)
        stats.record_commit(0, "a", 0)
        summary = stats.summary()
        for key in ("commits", "aborts", "abort_rate", "makespan_cycles",
                    "abort_causes", "reads", "writes"):
            assert key in summary


class TestSerialization:
    """RunStats must survive the executor's JSON process boundary."""

    def _populated(self):
        stats = RunStats(2)
        stats.threads[0].cycles = 100
        stats.threads[0].reads = 7
        stats.threads[1].cycles = 250
        stats.record_commit(0, "a", retries=0)
        stats.record_commit(1, "b", retries=2)
        stats.record_abort(0, "a", AbortCause.READ_WRITE)
        stats.record_abort(1, "b", AbortCause.WRITE_WRITE)
        return stats

    def test_round_trip_preserves_everything(self):
        stats = self._populated()
        recovered = RunStats.from_dict(stats.to_dict())
        assert recovered.to_dict() == stats.to_dict()
        assert recovered.total_commits == stats.total_commits
        assert recovered.abort_causes == stats.abort_causes
        assert recovered.retry_histogram == stats.retry_histogram
        assert recovered.per_label == stats.per_label
        assert recovered.makespan_cycles == 250

    def test_json_round_trip(self):
        import json

        stats = self._populated()
        recovered = RunStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert recovered.to_dict() == stats.to_dict()
        assert recovered.aborts_by(AbortCause.READ_WRITE) == 1

    def test_typed_keys_restored(self):
        stats = self._populated()
        recovered = RunStats.from_dict(stats.to_dict())
        assert all(isinstance(k, int) for k in recovered.retry_histogram)
        assert all(isinstance(c, AbortCause)
                   for c in recovered.abort_causes)
