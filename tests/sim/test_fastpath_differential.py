"""Fast-path differential: the flattened loop changes nothing observable.

The engine selects a specialized step loop at construction when no
observer (tracer, metrics, profiler, fault injector, retry policy) is
present.  These tests pin the refactor's core contract: for every
backend, over the persisted schedule corpus and the pinned micro grids,
the fast path produces **byte-identical** results to the fully-guarded
legacy path — the same :class:`RunStats` (including per-label insertion
order), the same final memory, the same step count, and the same
history of calls across the TM interface (operation order, arguments,
results and cycle charges), which is the complete channel through which
a run's schedule is observable without a tracer.

The TM-interface history is captured by wrapping the backend in a
recording proxy; the proxy works identically on both paths because the
engine drives the backend the same way regardless of loop shape — that
is exactly the property under test.
"""

import json
import pathlib

import pytest

from repro.common.rng import SplitRandom, derive_seed
from repro.oracle.fuzz import _make_body, _patched_config, \
    generate_schedule
from repro.perf.micro import _dispatch_programs, _fullstack_programs, \
    _machine
from repro.sim.engine import Engine, Tracer, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus" / "schedules"
#: livelock_under_fault never terminates by design (that is its point)
CLEAN_CORPUS = sorted(p for p in CORPUS_DIR.glob("*.json")
                      if p.stem != "livelock_under_fault")
ALL_SYSTEMS = sorted(SYSTEMS)


class RecordingTM:
    """Proxy over a TM backend logging every call across the interface.

    The log entries include arguments, results, raised abort causes and
    cycle charges, so two engines produce equal logs only if they drove
    the backend through the same sequence of operations with the same
    outcomes.
    """

    def __init__(self, inner, log):
        self._inner = inner
        self._log = log
        self.machine = inner.machine
        self.rng = inner.rng

    def __getattr__(self, name):
        # anything not intercepted (constants, ww_validation, ...)
        # resolves on the wrapped backend
        return getattr(self._inner, name)

    @property
    def stats(self):
        return self._inner.stats

    @stats.setter
    def stats(self, value):
        self._inner.stats = value

    @property
    def capacity_suppressed(self):
        return self._inner.capacity_suppressed

    @capacity_suppressed.setter
    def capacity_suppressed(self, value):
        # the engine toggles this during golden-token escalation; it
        # must reach the wrapped backend's capacity charges
        self._inner.capacity_suppressed = value

    def begin(self, thread_id, label, retries):
        txn, cycles = self._inner.begin(thread_id, label, retries)
        self._log.append(("begin", thread_id, label, retries,
                          txn is None, cycles))
        return txn, cycles

    def read(self, txn, addr, promote=False):
        try:
            value, cycles = self._inner.read(txn, addr, promote)
        except BaseException as exc:
            self._log.append(("read!", txn.thread_id, addr, promote,
                              type(exc).__name__, str(exc)))
            raise
        self._log.append(("read", txn.thread_id, addr, promote,
                          value, cycles))
        return value, cycles

    def write(self, txn, addr, value):
        try:
            cycles = self._inner.write(txn, addr, value)
        except BaseException as exc:
            self._log.append(("write!", txn.thread_id, addr, value,
                              type(exc).__name__, str(exc)))
            raise
        self._log.append(("write", txn.thread_id, addr, value, cycles))
        return cycles

    def commit(self, txn, now):
        try:
            cycles = self._inner.commit(txn, now)
        except BaseException as exc:
            self._log.append(("commit!", txn.thread_id, now,
                              type(exc).__name__, str(exc)))
            raise
        self._log.append(("commit", txn.thread_id, now, cycles))
        return cycles

    def abort(self, txn, cause):
        cycles = self._inner.abort(txn, cause)
        # killer provenance is part of the observable TM state: the
        # fast path must attribute every doomed transaction to the
        # same killer the legacy path does
        self._log.append(("abort", txn.thread_id, cause.name, cycles,
                          txn.killer_tid, txn.killer_uid,
                          txn.killer_label, txn.killer_ts))
        return cycles


def _load(path):
    doc = json.loads(path.read_text())
    return doc.get("schedule", doc)


def _run_schedule_variant(schedule, system, observed, soa=None):
    """Mirror ``repro.oracle.fuzz.run_schedule`` minus the recorder."""
    config = _patched_config(schedule.get("config"))
    machine = Machine(config)
    stride = machine.address_map.words_per_line
    initial = list(schedule["initial"])
    base = machine.mvmalloc(max(1, len(initial)) * stride)
    for cell, value in enumerate(initial):
        machine.plain_store(base + cell * stride, value)
    log = []
    tm = RecordingTM(
        SYSTEMS[system](machine, SplitRandom(
            derive_seed(0, "fuzz-run", schedule.get("name", ""), system))),
        log)
    programs = [
        [TransactionSpec(_make_body(txn["ops"], base, stride, txn["label"]),
                         txn["label"])
         for txn in thread]
        for thread in schedule["threads"]]
    total_ops = sum(len(txn["ops"]) + 2
                    for thread in schedule["threads"] for txn in thread)
    kwargs = {} if soa is None else {"soa": soa}
    engine = Engine(tm, programs,
                    tracer=Tracer() if observed else None, **kwargs)
    engine.run(max_steps=1000 * max(1, total_ops) + 20_000)
    final = [machine.plain_load(base + cell * stride)
             for cell in range(len(initial))]
    return {
        "stats": engine.stats.to_dict(),
        "final": final,
        "steps": engine.steps_taken,
        "tm_log": log,
        "fast": engine._fast,
    }


def _strip(result):
    return {k: result[k] for k in ("stats", "final", "steps", "tm_log")}


def test_all_six_backends_are_covered():
    assert len(ALL_SYSTEMS) == 6, ALL_SYSTEMS


def test_corpus_is_present():
    assert len(CLEAN_CORPUS) >= 3


@pytest.mark.parametrize("path", CLEAN_CORPUS,
                         ids=[p.stem for p in CLEAN_CORPUS])
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_fast_path_is_byte_identical_on_corpus(path, system):
    schedule = _load(path)
    fast = _run_schedule_variant(schedule, system, observed=False)
    observed = _run_schedule_variant(schedule, system, observed=True)
    assert not observed["fast"]
    if not schedule.get("config") or not (
            schedule["config"].get("faults")
            or schedule["config"].get("retry")):
        # no observer in the schedule's own config: the unobserved
        # variant must actually have taken the specialized loop —
        # otherwise this whole test is vacuously comparing legacy to
        # legacy
        assert fast["fast"]
    assert _strip(fast) == _strip(observed)


@pytest.mark.parametrize("path", CLEAN_CORPUS,
                         ids=[p.stem for p in CLEAN_CORPUS])
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_soa_layout_is_byte_identical_on_corpus(path, system):
    schedule = _load(path)
    auto = _run_schedule_variant(schedule, system, observed=False)
    soa = _run_schedule_variant(schedule, system, observed=False, soa=True)
    assert _strip(auto) == _strip(soa)


@pytest.mark.parametrize("index", range(6))
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_fast_path_is_byte_identical_on_generated_schedules(system, index):
    """Property over the fuzzer's schedule space: randomized contended
    schedules (increments, transfers, scans, blind writes, write skew)
    must agree between paths just like the curated corpus does."""
    schedule = generate_schedule(11, index, threads=3, txns=2,
                                 cells=4, ops=3)
    fast = _run_schedule_variant(schedule, system, observed=False)
    observed = _run_schedule_variant(schedule, system, observed=True)
    assert fast["fast"] and not observed["fast"]
    assert _strip(fast) == _strip(observed)


def _run_grid_variant(programs_builder, threads, observed, soa=None):
    machine = _machine(threads)
    tm = SYSTEMS["SI-TM"](machine, SplitRandom(7))
    log = []
    tm = RecordingTM(tm, log)
    kwargs = {} if soa is None else {"soa": soa}
    engine = Engine(tm, programs_builder(machine),
                    tracer=Tracer() if observed else None, **kwargs)
    engine.run()
    return {
        "stats": engine.stats.to_dict(),
        "steps": engine.steps_taken,
        "tm_log": log,
        "fast": engine._fast,
    }


def _fullstack(machine):
    base = machine.mvmalloc(32 * 8)
    return _fullstack_programs(base, 32, 12, 8)


def _dispatch(machine):
    wpl = machine.address_map.words_per_line
    base = machine.mvmalloc(64 * wpl)
    return _dispatch_programs(machine, base, 64, 6, 40, 300, 2, 2)


@pytest.mark.parametrize("builder,threads", [
    (_fullstack, 32),
    (_dispatch, 64),
], ids=["fullstack32", "dispatch64"])
def test_fast_path_is_byte_identical_on_micro_grids(builder, threads):
    """32- and 64-thread grids: exercises bursts, SoA and batched commit."""
    fast = _run_grid_variant(builder, threads, observed=False)
    observed = _run_grid_variant(builder, threads, observed=True)
    soa = _run_grid_variant(builder, threads, observed=False, soa=True)
    assert fast["fast"] and not observed["fast"] and soa["fast"]
    for variant in (observed, soa):
        assert {k: fast[k] for k in ("stats", "steps", "tm_log")} \
            == {k: variant[k] for k in ("stats", "steps", "tm_log")}
