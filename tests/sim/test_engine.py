"""Discrete-event engine tests: determinism, abort paths, accounting."""

import pytest

from repro.common.config import SimConfig, TMConfig
from repro.common.errors import SimulationError
from repro.sim.engine import Engine, Tracer, TransactionSpec
from repro.sim.machine import Machine
from repro.common.rng import SplitRandom
from repro.tm import SnapshotIsolationTM, TwoPhaseLockingTM
from repro.tm.ops import Abort, Compute, Read, Write

from tests.conftest import run_program, spec


def counter_body(addr):
    def body():
        value = yield Read(addr)
        yield Compute(2)
        yield Write(addr, value + 1)
    return body


class TestBasics:
    def test_single_transaction_commits(self, machine):
        addr = machine.mvmalloc(1)
        stats = run_program(machine, "SI-TM", [[spec(counter_body(addr))]])
        assert stats.total_commits == 1
        assert machine.plain_load(addr) == 1

    def test_return_value_ignored_but_body_runs(self, machine):
        addr = machine.mvmalloc(1)

        def body():
            yield Write(addr, 5)
            return "result"

        run_program(machine, "SI-TM", [[spec(body)]])
        assert machine.plain_load(addr) == 5

    def test_read_result_delivered_to_body(self, machine):
        addr = machine.mvmalloc(2)
        machine.plain_store(addr, 41)

        def body():
            value = yield Read(addr)
            yield Write(addr + 1, value + 1)

        run_program(machine, "SI-TM", [[spec(body)]])
        assert machine.plain_load(addr + 1) == 42

    def test_empty_program_finishes(self, machine):
        stats = run_program(machine, "SI-TM", [[], []])
        assert stats.total_commits == 0

    def test_compute_advances_clock(self, machine):
        def body():
            yield Compute(500)

        stats = run_program(machine, "SI-TM", [[spec(body)]])
        assert stats.threads[0].cycles >= 500


class TestConcurrencyInvariants:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM", "SSI-TM"])
    def test_counter_never_loses_updates(self, system):
        machine = Machine()
        addr = machine.mvmalloc(1)
        programs = [[spec(counter_body(addr)) for _ in range(25)]
                    for _ in range(4)]
        stats = run_program(machine, system, programs)
        assert stats.total_commits == 100
        assert machine.plain_load(addr) == 100

    def test_determinism_same_seed(self):
        results = []
        for _ in range(2):
            machine = Machine()
            addr = machine.mvmalloc(1)
            programs = [[spec(counter_body(addr)) for _ in range(20)]
                        for _ in range(4)]
            stats = run_program(machine, "2PL", programs, seed=3)
            results.append((stats.total_aborts, stats.makespan_cycles))
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        makespans = set()
        for seed in range(4):
            machine = Machine()
            addr = machine.mvmalloc(1)
            programs = [[spec(counter_body(addr)) for _ in range(20)]
                        for _ in range(4)]
            stats = run_program(machine, "2PL", programs, seed=seed)
            makespans.add(stats.makespan_cycles)
        assert len(makespans) > 1  # backoff jitter differs


class TestAbortPaths:
    def test_explicit_abort_retries_forever_guard(self, machine):
        def body():
            yield Abort()

        config = SimConfig(tm=TMConfig(max_retries=3))
        machine = Machine(config)
        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        engine = Engine(tm, [[spec(body)]])
        with pytest.raises(SimulationError):
            engine.run()

    def test_retry_reexecutes_fresh_body(self, machine):
        attempts = []
        addr = machine.mvmalloc(1)

        def body():
            attempts.append(1)
            value = yield Read(addr)
            if len(attempts) < 3:
                yield Abort()
            yield Write(addr, value + 1)

        stats = run_program(machine, "SI-TM", [[spec(body)]])
        assert len(attempts) == 3
        assert stats.total_aborts == 2
        assert stats.total_commits == 1

    def test_abort_records_label(self, machine):
        def body():
            yield Abort()

        config = SimConfig(tm=TMConfig(max_retries=1))
        machine = Machine(config)
        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        engine = Engine(tm, [[TransactionSpec(body, "mylabel")]])
        with pytest.raises(SimulationError):
            engine.run()
        assert engine.stats.per_label["mylabel"]["aborts"] >= 1


class TestScheduling:
    def test_min_clock_thread_runs_first(self, machine):
        order = []
        addr = machine.mvmalloc(2)

        def slow():
            order.append("slow-start")
            yield Compute(10_000)
            order.append("slow-end")
            yield Write(addr, 1)

        def fast():
            order.append("fast")
            yield Write(addr + 1, 1)

        run_program(machine, "SI-TM", [[spec(slow)], [spec(fast)]])
        # the fast thread's entire transaction fits inside the slow compute
        assert order.index("fast") < order.index("slow-end")

    def test_too_many_threads_rejected(self):
        machine = Machine()
        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        programs = [[] for _ in range(machine.config.machine.cores + 1)]
        with pytest.raises(SimulationError):
            Engine(tm, programs)


class TestTracerHooks:
    def test_all_hooks_fire(self, machine):
        events = []

        class Probe(Tracer):
            def on_begin(self, txn):
                events.append("begin")

            def on_read(self, txn, addr, site, value=None):
                events.append(("read", site))

            def on_write(self, txn, addr, site, value=None):
                events.append(("write", site))

            def on_commit(self, txn):
                events.append("commit")

        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr, site="s1")
            yield Write(addr, value + 1, site="s2")

        run_program(machine, "SI-TM", [[spec(body)]], tracer=Probe())
        assert events == ["begin", ("read", "s1"), ("write", "s2"), "commit"]

    def test_promote_sites_force_promotion(self, machine):
        addr = machine.mvmalloc(1)
        seen = {}

        class Probe(Tracer):
            def on_commit(self, txn):
                seen["promoted"] = set(txn.promoted_lines)

        def body():
            yield Read(addr, site="hot")
            yield Write(addr + 0, 1)  # make it a writer so commit validates

        run_program(machine, "SI-TM", [[spec(body)]], tracer=Probe(),
                    promote_sites={"hot"})
        line = machine.address_map.line_of(addr)
        assert line in seen["promoted"]
