"""Fuzzer tests: determinism, executor integration, shrinking, repros."""

import json

import pytest

from repro.harness.executor import Executor
from repro.oracle.fuzz import (FuzzReport, FuzzResult, FuzzSpec,
                               addonly_cells, check_schedule_run,
                               expected_counters, fuzz_batch,
                               generate_schedule, run_schedule,
                               schedule_violations)
from repro.oracle.shrink import (load_repro, persist_repro,
                                 schedule_digest, shrink_schedule)
from repro.tm import SYSTEMS

ALL_SYSTEMS = sorted(SYSTEMS)

#: the minimal lost-update race: two concurrent read-modify-write adds
RACE = {
    "name": "race",
    "initial": [7, 0],
    "threads": [
        [{"label": "t0", "ops": [["a", 0, 9]]}],
        [{"label": "t1", "ops": [["a", 0, 2]]}],
    ],
}


class TestScheduleGeneration:
    def test_pure_function_of_arguments(self):
        assert generate_schedule(3, 5) == generate_schedule(3, 5)

    def test_distinct_indices_give_distinct_schedules(self):
        schedules = [generate_schedule(0, i) for i in range(10)]
        assert len({json.dumps(s, sort_keys=True)
                    for s in schedules}) > 1

    def test_every_transaction_has_ops(self):
        for index in range(20):
            schedule = generate_schedule(1, index)
            for thread in schedule["threads"]:
                for txn in thread:
                    assert txn["ops"], txn

    def test_addonly_cells_exclude_blindly_written(self):
        schedule = {"initial": [0, 0, 0], "threads": [[
            {"label": "t", "ops": [["a", 0, 1], ["a", 1, 2],
                                   ["w", 1, 9]]}]]}
        assert addonly_cells(schedule) == [0]
        assert expected_counters(schedule) == {0: 1}


class TestRunAndCheck:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_race_is_clean_on_every_backend(self, system):
        violations, final, history = check_schedule_run(RACE, system)
        assert violations == []
        assert final[0] == 7 + 9 + 2
        assert len(history.committed()) == 2

    def test_broken_sitm_is_caught(self):
        violations, final, _ = check_schedule_run(RACE, "SI-TM",
                                                  broken="no-ww")
        rules = {v.rule for v in violations}
        assert "first-committer-wins" in rules
        assert "lost-update" in rules
        assert final[0] != 7 + 9 + 2

    def test_broken_hook_is_noop_for_other_backends(self):
        violations, final, _ = check_schedule_run(RACE, "2PL",
                                                  broken="no-ww")
        assert violations == [] and final[0] == 18

    def test_config_patch_applies(self):
        patched = dict(RACE, config={"mvm": {"max_versions": 2}})
        history, final = run_schedule(patched, "SI-TM")
        assert final[0] == 18 and len(history.committed()) == 2


class TestFuzzSpec:
    def test_round_trip(self):
        spec = FuzzSpec(system="SI-TM", seed=4, index=9, broken="no-ww")
        assert FuzzSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(spec.canonical_json())["kind"] == "fuzz"

    def test_run_produces_serializable_result(self):
        spec = FuzzSpec(system="SI-TM",
                        schedule_json=json.dumps(RACE))
        result = spec.run()
        assert isinstance(result, FuzzResult)
        assert result.committed == 2 and result.violations == []
        assert FuzzResult.from_dict(result.to_dict()).to_dict() == \
            result.to_dict()

    def test_executor_caches_fuzz_results(self):
        specs = [FuzzSpec(system=system, schedule_json=json.dumps(RACE))
                 for system in ALL_SYSTEMS]
        first = Executor(jobs=1, cache=True)
        results = first.run(specs)
        assert first.counters()["cache_misses"] == len(specs)
        second = Executor(jobs=1, cache=True)
        again = second.run(specs)
        assert second.counters()["cache_hits"] == len(specs)
        for spec in specs:
            assert again[spec].to_dict() == results[spec].to_dict()

    def test_process_pool_matches_inline(self):
        specs = [FuzzSpec(system=system, seed=0, index=1)
                 for system in ALL_SYSTEMS]
        inline = Executor(jobs=1, cache=False).run(specs)
        pooled = Executor(jobs=2, cache=False).run(specs)
        for spec in specs:
            assert pooled[spec].to_dict() == inline[spec].to_dict()


class TestShrinking:
    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            shrink_schedule(RACE, lambda schedule: False)

    def test_shrinks_to_minimal_core(self):
        padded = {
            "name": "padded", "initial": [7, 0, 0],
            "threads": [
                [{"label": "t0", "ops": [["r", 2], ["a", 0, 9]]},
                 {"label": "t0b", "ops": [["r", 1]]}],
                [{"label": "t1", "ops": [["a", 0, 2], ["c", 2]]}],
                [{"label": "t2", "ops": [["r", 2], ["c", 1]]}],
            ],
        }

        def failing(candidate):
            return bool(schedule_violations(candidate, ["SI-TM"],
                                            broken="no-ww"))

        assert failing(padded)
        minimal = shrink_schedule(padded, failing)
        txns = [txn for thread in minimal["threads"] for txn in thread]
        assert len(txns) == 2
        assert all(len(txn["ops"]) == 1 and txn["ops"][0][0] == "a"
                   for txn in txns)
        assert failing(minimal)

    def test_digest_is_content_addressed(self):
        assert schedule_digest(RACE) == schedule_digest(json.loads(
            json.dumps(RACE)))
        assert schedule_digest(RACE) != schedule_digest(
            dict(RACE, initial=[8, 0]))


class TestRepros:
    def test_persist_and_load_round_trip(self, tmp_path):
        path = persist_repro(tmp_path, RACE, ["SI-TM"], seed=3,
                             violations=[{"rule": "x", "detail": "d",
                                          "txns": [], "addr": None}],
                             broken="no-ww")
        payload = load_repro(path)
        assert payload["schedule"] == RACE
        assert payload["systems"] == ["SI-TM"]
        assert payload["seed"] == 3 and payload["broken"] == "no-ww"
        assert payload["violations"][0]["rule"] == "x"

    def test_load_accepts_bare_schedule(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(RACE))
        assert load_repro(path)["schedule"] == RACE


class TestFuzzBatch:
    def test_clean_campaign(self, tmp_path):
        report = fuzz_batch(Executor(jobs=1, cache=False),
                            ALL_SYSTEMS, schedules=5, seed=0,
                            out_dir=tmp_path)
        assert isinstance(report, FuzzReport) and report.clean
        assert report.repro_path is None
        for system in ALL_SYSTEMS:
            row = report.per_system[system]
            assert row["schedules"] == 5 and row["violations"] == 0
            assert row["committed"] > 0

    @pytest.mark.slow
    def test_long_campaign_is_clean(self, tmp_path):
        report = fuzz_batch(Executor(jobs=0, cache=False),
                            ALL_SYSTEMS, schedules=200, seed=0,
                            out_dir=tmp_path)
        assert report.clean, report.violations[:5]

    def test_broken_campaign_persists_minimal_repro(self, tmp_path):
        report = fuzz_batch(Executor(jobs=1, cache=False),
                            ["SI-TM"], schedules=5, seed=0,
                            broken="no-ww", out_dir=tmp_path)
        assert not report.clean
        assert report.repro_path is not None
        payload = load_repro(report.repro_path)
        assert payload["broken"] == "no-ww"
        assert payload["violations"]
        # the persisted schedule still reproduces the violation
        assert schedule_violations(payload["schedule"], ["SI-TM"],
                                   seed=payload["seed"], broken="no-ww")
