"""History recording: completeness, uids per attempt, serialization."""

from repro.oracle.fuzz import run_schedule
from repro.oracle.history import (ABORT, BEGIN, COMMIT, READ, WRITE,
                                  History)
from repro.skew.serialization import is_conflict_serializable

CONTENDED = {
    "name": "contended",
    "initial": [5, 0],
    "threads": [
        [{"label": "t0.0", "ops": [["a", 0, 1]]},
         {"label": "t0.1", "ops": [["r", 0], ["r", 1]]}],
        [{"label": "t1.0", "ops": [["a", 0, 2]]},
         {"label": "t1.1", "ops": [["a", 1, 4]]}],
    ],
}


def recorded(system="SI-TM"):
    history, final = run_schedule(CONTENDED, system)
    return history, final


class TestRecording:
    def test_all_event_kinds_present(self):
        history, _ = recorded("2PL")  # 2PL aborts under this contention
        kinds = {ev.kind for ev in history.events}
        assert {BEGIN, READ, WRITE, COMMIT}.issubset(kinds)
        assert ABORT in kinds, "contended 2PL run should record aborts"

    def test_every_program_transaction_commits_once(self):
        history, _ = recorded()
        committed = [rec.label for rec in history.committed()]
        assert sorted(committed) == ["t0.0", "t0.1", "t1.0", "t1.1"]

    def test_read_values_and_write_values_captured(self):
        history, final = recorded()
        adders = [rec for rec in history.committed()
                  if rec.label in ("t0.0", "t1.0")]
        for rec in adders:
            (addr_r, seen, _), = rec.reads
            (addr_w, stored, _), = rec.writes
            assert addr_r == addr_w
            assert stored == seen + {"t0.0": 1, "t1.0": 2}[rec.label]
        assert final[0] == 5 + 1 + 2

    def test_retry_gets_fresh_uid(self):
        history, _ = recorded("2PL")
        aborted = history.aborts()
        assert aborted
        for rec in aborted:
            retries = [other for other in history.committed()
                       if other.label == rec.label]
            assert retries and retries[0].uid != rec.uid

    def test_commit_timestamps_recorded_for_si_writers(self):
        history, _ = recorded("SI-TM")
        for rec in history.committed():
            assert rec.start_ts is not None
            if rec.writes:
                assert rec.commit_ts is not None
                assert rec.commit_ts > rec.start_ts

    def test_initial_image_captured(self):
        history, _ = recorded()
        assert sorted(history.initial.values()) == [0, 5]


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        history, _ = recorded("SSI-TM")
        clone = History.loads(history.dumps())
        assert clone.to_dict() == history.to_dict()
        assert clone.system == "SSI-TM"
        assert clone.isolation == "serializable-snapshot"
        assert clone.abort_causes == history.abort_causes

    def test_events_keep_global_order(self):
        history, _ = recorded()
        assert [ev.index for ev in history.events] == \
            list(range(len(history.events)))


class TestTraceProjection:
    def test_to_trace_feeds_skew_machinery(self):
        history, _ = recorded("2PL")
        trace = history.to_trace()
        assert len(trace.committed_transactions()) == 4
        assert is_conflict_serializable(trace, read_mode="latest")

    def test_projection_preserves_read_write_sets(self):
        history, _ = recorded()
        trace = history.to_trace()
        for uid, rec in history.transactions.items():
            traced = trace.transactions[uid]
            assert [a for a, _ in traced.reads] == \
                [a for a, _, _ in rec.reads]
            assert [a for a, _ in traced.writes] == \
                [a for a, _, _ in rec.writes]
