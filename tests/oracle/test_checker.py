"""Checker unit tests: each violation rule on hand-built histories.

A tiny builder assembles :class:`~repro.oracle.history.History` objects
event by event, keeping the event list, per-transaction records and
timestamps consistent, so each test states its scenario as a readable
interleaving and asserts exactly which rules fire.
"""

from repro.oracle.checker import Violation, check_history
from repro.oracle.history import (ABORT, BEGIN, COMMIT, READ, WRITE,
                                  History, HistoryEvent, TxnRecord)

SI_CAUSES = ("write-write", "version-overflow", "snapshot-too-old",
             "timestamp-overflow", "explicit")

A, B = 0x1000, 0x1040


class Builder:
    """Assembles a consistent History from explicit begin/op/commit calls."""

    def __init__(self, isolation, system="test", causes=SI_CAUSES,
                 initial=None):
        self.history = History(system=system, isolation=isolation,
                               abort_causes=tuple(causes),
                               initial=dict(initial or {}))
        self._uid = 0

    def _event(self, kind, uid, addr=None, value=None):
        rec = self.history.transactions[uid]
        index = len(self.history.events)
        self.history.events.append(HistoryEvent(
            index, kind, uid, rec.thread_id, rec.label, addr, value,
            site=f"site{index}"))
        return index

    def begin(self, thread, label, start_ts):
        uid = self._uid
        self._uid += 1
        self.history.transactions[uid] = TxnRecord(
            uid, thread, label, begin_index=len(self.history.events),
            start_ts=start_ts)
        self.history.events.append(HistoryEvent(
            len(self.history.events), BEGIN, uid, thread, label))
        return uid

    def read(self, uid, addr, value):
        index = self._event(READ, uid, addr, value)
        self.history.transactions[uid].reads.append((addr, value, index))

    def write(self, uid, addr, value):
        index = self._event(WRITE, uid, addr, value)
        self.history.transactions[uid].writes.append((addr, value, index))

    def commit(self, uid, commit_ts=None):
        index = self._event(COMMIT, uid)
        rec = self.history.transactions[uid]
        rec.commit_index = index
        rec.commit_ts = commit_ts

    def abort(self, uid, cause):
        self._event(ABORT, uid)
        self.history.transactions[uid].abort_cause = cause

    def check(self):
        return check_history(self.history)

    def rules(self):
        return sorted({v.rule for v in self.check()})


class TestSnapshotLevel:
    def test_clean_si_history(self):
        b = Builder("snapshot", initial={A: 7})
        t1 = b.begin(0, "t1", start_ts=1)
        b.read(t1, A, 7)
        b.write(t1, A, 8)
        b.commit(t1, commit_ts=10)
        t2 = b.begin(1, "t2", start_ts=11)
        b.read(t2, A, 8)
        b.commit(t2, commit_ts=20)
        assert b.check() == []

    def test_read_own_write_is_legal(self):
        b = Builder("snapshot", initial={A: 1})
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 5)
        b.read(t1, A, 5)  # sees its own uncommitted write, not snapshot
        b.commit(t1, commit_ts=10)
        assert b.check() == []

    def test_stale_snapshot_read_flagged(self):
        # t2's snapshot predates t1's commit, yet t2 observes t1's write.
        b = Builder("snapshot", initial={A: 0})
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 5)
        b.commit(t1, commit_ts=10)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t2, A, 5)
        b.commit(t2, commit_ts=20)
        assert "snapshot-read" in b.rules()

    def test_first_committer_wins_violation(self):
        b = Builder("snapshot", initial={A: 0})
        t1 = b.begin(0, "t1", start_ts=1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.write(t1, A, 5)
        b.write(t2, A, 7)
        b.commit(t1, commit_ts=10)
        b.commit(t2, commit_ts=12)  # overlapped t1, same address: must abort
        violations = b.check()
        assert any(v.rule == "first-committer-wins" for v in violations)
        fcw = next(v for v in violations
                   if v.rule == "first-committer-wins")
        assert set(fcw.txns) == {t1, t2} and fcw.addr == A

    def test_silent_store_overlap_tolerated(self):
        # Same value from both writers: the word-grain commit filter may
        # legitimately let a silent store commit past a concurrent writer.
        b = Builder("snapshot", initial={A: 0})
        t1 = b.begin(0, "t1", start_ts=1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.write(t1, A, 5)
        b.write(t2, A, 5)
        b.commit(t1, commit_ts=10)
        b.commit(t2, commit_ts=12)
        assert b.check() == []

    def test_write_skew_is_legal_under_plain_si(self):
        b = Builder("snapshot", initial={A: 1, B: 1})
        t1 = b.begin(0, "t1", start_ts=1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t1, A, 1)
        b.read(t1, B, 1)
        b.read(t2, A, 1)
        b.read(t2, B, 1)
        b.write(t1, A, 0)
        b.write(t2, B, 0)
        b.commit(t1, commit_ts=10)
        b.commit(t2, commit_ts=12)
        assert b.check() == []

    def test_missing_commit_timestamp_flagged(self):
        b = Builder("snapshot")
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 5)
        b.commit(t1, commit_ts=None)
        assert "timestamps" in b.rules()

    def test_commit_before_start_flagged(self):
        b = Builder("snapshot")
        t1 = b.begin(0, "t1", start_ts=9)
        b.write(t1, A, 5)
        b.commit(t1, commit_ts=9)
        assert "timestamps" in b.rules()


class TestConflictSerializableLevel:
    def test_clean_serial_history(self):
        b = Builder("conflict-serializable", initial={A: 0})
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 5)
        b.commit(t1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t2, A, 5)
        b.commit(t2)
        assert b.check() == []

    def test_stale_read_flagged(self):
        b = Builder("conflict-serializable", initial={A: 0})
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 5)
        b.commit(t1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t2, A, 0)  # t1's commit already published 5
        b.commit(t2)
        assert "latest-read" in b.rules()

    def test_write_skew_cycle_flagged(self):
        # Legal under SI, but a CS system must never produce it.
        b = Builder("conflict-serializable", initial={A: 1, B: 1})
        t1 = b.begin(0, "t1", start_ts=1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t1, B, 1)
        b.read(t2, A, 1)
        b.write(t1, A, 0)
        b.write(t2, B, 0)
        b.commit(t1)
        b.commit(t2)
        violations = b.check()
        assert any(v.rule == "serialization-cycle" for v in violations)


class TestSerializableSnapshotLevel:
    def test_committed_pivot_flagged(self):
        # The write-skew pair: each transaction carries an inbound and an
        # outbound rw antidependency — a dangerous structure SSI must abort.
        b = Builder("serializable-snapshot", initial={A: 1, B: 1})
        t1 = b.begin(0, "t1", start_ts=1)
        t2 = b.begin(1, "t2", start_ts=2)
        b.read(t1, A, 1)
        b.read(t1, B, 1)
        b.read(t2, A, 1)
        b.read(t2, B, 1)
        b.write(t1, A, 0)
        b.write(t2, B, 0)
        b.commit(t1, commit_ts=10)
        b.commit(t2, commit_ts=12)
        rules = b.rules()
        assert "dangerous-structure" in rules
        assert "serialization-cycle" in rules

    def test_disjoint_writers_clean(self):
        b = Builder("serializable-snapshot", initial={A: 1, B: 1})
        t1 = b.begin(0, "t1", start_ts=1)
        b.write(t1, A, 2)
        b.commit(t1, commit_ts=10)
        t2 = b.begin(1, "t2", start_ts=11)
        b.read(t2, A, 2)
        b.write(t2, B, 3)
        b.commit(t2, commit_ts=20)
        assert b.check() == []


class TestSharedChecks:
    def test_undeclared_abort_cause_flagged(self):
        b = Builder("snapshot", causes=("write-write",))
        t1 = b.begin(0, "t1", start_ts=1)
        b.abort(t1, "read-write")  # SI-TM never declares read-write
        assert b.rules() == ["abort-cause"]

    def test_declared_abort_cause_clean(self):
        b = Builder("snapshot", causes=("write-write",))
        t1 = b.begin(0, "t1", start_ts=1)
        b.abort(t1, "write-write")
        assert b.check() == []


class TestViolationType:
    def test_round_trip(self):
        violation = Violation("snapshot-read", "detail", (1, 2), A)
        assert Violation.from_dict(violation.to_dict()) == violation

    def test_str_mentions_rule_addr_and_txns(self):
        text = str(Violation("rule-x", "some detail", (3,), 0x40))
        assert "[rule-x]" in text and "0x40" in text and "3" in text
