"""Extra (non-paper) workload tests: hashtable and pipeline."""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.workloads import PAPER_ORDER, REGISTRY

from tests.conftest import run_program


class TestRegistration:
    def test_registered_but_not_in_paper_order(self):
        assert "hashtable" in REGISTRY
        assert "pipeline" in REGISTRY
        assert "hashtable" not in PAPER_ORDER
        assert "pipeline" not in PAPER_ORDER


@pytest.mark.parametrize("name", ["hashtable", "pipeline"])
@pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
def test_runs_clean(name, system):
    workload = REGISTRY.create(name, profile="test")
    machine = Machine()
    instance = workload.setup(machine, 4, SplitRandom(3))
    total = sum(len(p) for p in instance.programs)
    stats = run_program(machine, system, instance.programs, seed=1)
    assert stats.total_commits == total
    assert instance.verify()


class TestCharacteristics:
    def test_hashtable_moderate_contention_for_everyone(self):
        rates = {}
        for system in ("2PL", "SI-TM"):
            workload = REGISTRY.create("hashtable", profile="test")
            machine = Machine()
            instance = workload.setup(machine, 8, SplitRandom(5))
            stats = run_program(machine, system, instance.programs, seed=2)
            rates[system] = stats.abort_rate
        assert all(rate < 0.35 for rate in rates.values())
        # per-bucket conflicts favour SI (bucket-head writes vs chain reads)
        assert rates["SI-TM"] <= rates["2PL"]

    def test_pipeline_conflicts_regardless_of_system(self):
        """Cursor RMW: SI gains nothing (every conflict is write-write)."""
        aborts = {}
        for system in ("2PL", "SI-TM"):
            workload = REGISTRY.create("pipeline", profile="test")
            machine = Machine()
            instance = workload.setup(machine, 8, SplitRandom(5))
            stats = run_program(machine, system, instance.programs, seed=2)
            aborts[system] = stats.total_aborts
        assert aborts["SI-TM"] > aborts["2PL"] / 50

    def test_hashtable_contention_levels(self):
        lows, highs = [], []
        for level, bucket in (("low", lows), ("high", highs)):
            workload = REGISTRY.create("hashtable", profile="test",
                                       contention=level)
            machine = Machine()
            instance = workload.setup(machine, 8, SplitRandom(5))
            stats = run_program(machine, "2PL", instance.programs, seed=2)
            bucket.append(stats.total_aborts)
        assert highs[0] >= lows[0]


class TestYada:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
    def test_runs_and_verifies(self, system):
        workload = REGISTRY.create("yada", profile="test")
        machine = Machine()
        instance = workload.setup(machine, 4, SplitRandom(9))
        total = sum(len(p) for p in instance.programs)
        stats = run_program(machine, system, instance.programs, seed=4)
        assert stats.total_commits == total
        assert instance.verify()

    def test_cavities_conflict_under_everyone(self):
        """Overlapping cavities produce aborts for every policy (unlike
        the pure-reader benchmarks where SI collapses them to ~zero)."""
        aborts = {}
        for system in ("2PL", "SI-TM"):
            workload = REGISTRY.create("yada", profile="test",
                                       contention="high")
            machine = Machine()
            instance = workload.setup(machine, 8, SplitRandom(2))
            stats = run_program(machine, system, instance.programs, seed=2)
            aborts[system] = stats.total_aborts
        assert aborts["2PL"] > 0
        assert aborts["SI-TM"] > 0
