"""Workload registry and framework tests."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.workloads import PAPER_ORDER, REGISTRY
from repro.workloads.base import Workload, WorkloadRegistry, partition


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        for name in PAPER_ORDER:
            assert name in REGISTRY

    def test_paper_order_has_ten(self):
        assert len(PAPER_ORDER) == 10

    def test_create_unknown_rejected(self):
        with pytest.raises(ConfigError):
            REGISTRY.create("nope")

    def test_names_sorted(self):
        names = REGISTRY.names()
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        registry = WorkloadRegistry()

        class W(Workload):
            name = "w"

            def setup(self, machine, num_threads, rng):
                raise NotImplementedError

        registry.register(W)
        with pytest.raises(ConfigError):
            registry.register(W)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigError):
            REGISTRY.create("array", profile="huge")


class TestPartition:
    def test_even(self):
        assert partition(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert partition(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for total in (1, 7, 100, 999):
            for threads in (1, 3, 8, 32):
                assert sum(partition(total, threads)) == total


class TestSetupShapes:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_program_count_matches_threads(self, name):
        workload = REGISTRY.create(name, profile="test")
        machine = Machine()
        instance = workload.setup(machine, 4, SplitRandom(1))
        assert len(instance.programs) == 4
        assert all(len(p) > 0 for p in instance.programs)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_setup_deterministic(self, name):
        counts = []
        for _ in range(2):
            workload = REGISTRY.create(name, profile="test")
            instance = workload.setup(Machine(), 2, SplitRandom(3))
            counts.append([len(p) for p in instance.programs])
            labels = [s.label for p in instance.programs for s in p]
        assert counts[0] == counts[1]

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_labels_prefixed_with_workload(self, name):
        workload = REGISTRY.create(name, profile="test")
        instance = workload.setup(Machine(), 2, SplitRandom(1))
        for program in instance.programs:
            for spec in program:
                assert spec.label.split(".")[0] in name or \
                    spec.label.startswith(name[:4])
