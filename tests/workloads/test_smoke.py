"""Every workload runs to completion under every system (test profile)."""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.workloads import PAPER_ORDER, REGISTRY

from tests.conftest import run_program


@pytest.mark.parametrize("name", PAPER_ORDER)
@pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
def test_runs_and_verifies(name, system):
    workload = REGISTRY.create(name, profile="test")
    machine = Machine()
    instance = workload.setup(machine, 4, SplitRandom(11))
    total = sum(len(p) for p in instance.programs)
    stats = run_program(machine, system, instance.programs, seed=2)
    assert stats.total_commits == total
    if instance.verify is not None:
        assert instance.verify()


@pytest.mark.parametrize("name", ["array", "list", "vacation", "bayes"])
def test_si_aborts_less_than_2pl_on_read_heavy(name):
    """The paper's core claim, on the read-heavy benchmarks."""
    aborts = {}
    for system in ("2PL", "SI-TM"):
        workload = REGISTRY.create(name, profile="test")
        machine = Machine()
        instance = workload.setup(machine, 4, SplitRandom(5))
        stats = run_program(machine, system, instance.programs, seed=3)
        aborts[system] = stats.total_aborts
    assert aborts["SI-TM"] <= aborts["2PL"]


def test_kmeans_si_no_advantage():
    """Negative control: RMW-only kmeans gains nothing from SI (the
    abort counts stay in the same ballpark, not orders of magnitude)."""
    aborts = {}
    for system in ("2PL", "SI-TM"):
        workload = REGISTRY.create("kmeans", profile="test")
        machine = Machine()
        instance = workload.setup(machine, 8, SplitRandom(5))
        stats = run_program(machine, system, instance.programs, seed=3)
        aborts[system] = stats.total_aborts
    assert aborts["SI-TM"] > aborts["2PL"] / 50


@pytest.mark.parametrize("name", ["ssca2", "kmeans", "rbtree"])
@pytest.mark.parametrize("system", ["SSI-TM", "LogTM"])
def test_extended_systems_run_and_verify(name, system):
    """The extension systems drive the same workloads unchanged."""
    workload = REGISTRY.create(name, profile="test")
    machine = Machine()
    instance = workload.setup(machine, 4, SplitRandom(13))
    total = sum(len(p) for p in instance.programs)
    stats = run_program(machine, system, instance.programs, seed=6)
    assert stats.total_commits == total
    if instance.verify is not None:
        assert instance.verify()
