"""Scaling-profile behaviour tests."""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.workloads import PAPER_ORDER, REGISTRY


def total_specs(name, profile, threads=4):
    workload = REGISTRY.create(name, profile=profile)
    instance = workload.setup(Machine(), threads, SplitRandom(7))
    return sum(len(p) for p in instance.programs)


class TestProfileScaling:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_quick_not_smaller_than_test(self, name):
        assert total_specs(name, "quick") >= total_specs(name, "test")

    @pytest.mark.parametrize("name", ["array", "list", "rbtree"])
    def test_full_profile_keeps_paper_per_thread_counts(self, name):
        # paper: 1000 transactions per thread for the microbenchmarks
        assert total_specs(name, "full", threads=2) == 2000

    def test_micro_full_sizes_match_paper(self):
        from repro.workloads.micro import ArrayBench, ListBench, RBTreeBench

        array = ArrayBench(profile="full")
        assert array._pick(test=0, quick=0, full=30_000) == 30_000
        lst = ListBench(profile="full")
        assert lst._pick(test=0, quick=0, full=1000) == 1000
        tree = RBTreeBench(profile="full")
        assert tree._pick(test=0, quick=0, full=100) == 100


class TestMixRatios:
    """The paper's operation mixes hold across profiles (within noise)."""

    def _label_fractions(self, name, profile, threads=8, seed=3):
        workload = REGISTRY.create(name, profile=profile)
        instance = workload.setup(Machine(), threads, SplitRandom(seed))
        from collections import Counter

        counts = Counter(s.label for p in instance.programs for s in p)
        total = sum(counts.values())
        return {label: n / total for label, n in counts.items()}

    def test_array_mix_20_80(self):
        fractions = self._label_fractions("array", "quick")
        assert 0.10 <= fractions.get("array.scan", 0) <= 0.30
        assert 0.70 <= fractions.get("array.update", 0) <= 0.90

    def test_list_mix_40_40_20(self):
        fractions = self._label_fractions("list", "quick")
        assert 0.30 <= fractions.get("list.insert", 0) <= 0.50
        assert 0.30 <= fractions.get("list.remove", 0) <= 0.50
        assert 0.10 <= fractions.get("list.lookup", 0) <= 0.30

    def test_rbtree_mix_50_25_25(self):
        fractions = self._label_fractions("rbtree", "quick")
        assert 0.40 <= fractions.get("rbtree.lookup", 0) <= 0.60
        assert 0.15 <= fractions.get("rbtree.insert", 0) <= 0.35
        assert 0.15 <= fractions.get("rbtree.remove", 0) <= 0.35

    def test_bayes_quarter_read_only(self):
        fractions = self._label_fractions("bayes", "quick")
        assert 0.10 <= fractions.get("bayes.evaluate", 0) <= 0.40
