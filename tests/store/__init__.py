"""Tests for the live transactional KV store (``repro.store``)."""
