"""Wire-protocol framing tests: the server/client/chaos shared layer."""

import asyncio
import struct

import pytest

from repro.common.errors import ProtocolError
from repro.store.protocol import (ERROR_CODES, MAX_FRAME, OPS, encode_frame,
                                  error_response, ok_response, read_frame)


def feed(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    """A StreamReader preloaded with ``data`` (call under a running loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def read_one(data: bytes, timeout=None, eof: bool = True) -> dict:
    async def runner() -> dict:
        return await read_frame(feed(data, eof=eof), timeout)

    return asyncio.run(runner())


class TestFraming:
    def test_round_trip(self):
        message = {"op": "BEGIN", "label": "t", "deadline_ms": 250}
        assert read_one(encode_frame(message)) == message

    def test_round_trip_unicode_payload(self):
        message = {"op": "WRITE", "key": "k", "value": "héllo ☃"}
        assert read_one(encode_frame(message)) == message

    def test_two_frames_back_to_back(self):
        async def runner():
            reader = feed(encode_frame({"op": "PING"})
                          + encode_frame({"op": "ABORT"}))
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = asyncio.run(runner())
        assert first == {"op": "PING"}
        assert second == {"op": "ABORT"}

    def test_eof_mid_frame_raises(self):
        with pytest.raises((ProtocolError, asyncio.IncompleteReadError)):
            read_one(encode_frame({"op": "PING"})[:-2])

    def test_oversize_announcement_rejected(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="limit"):
            read_one(header)

    def test_junk_payload_rejected(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="not JSON"):
            read_one(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="object"):
            read_one(struct.pack(">I", len(body)) + body)

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_slow_loris_header_times_out(self):
        """A trickled header must not hold the read open past timeout."""
        with pytest.raises(ProtocolError, match="stalled"):
            read_one(b"\x00\x00", timeout=0.05, eof=False)

    def test_slow_loris_body_times_out(self):
        """The timeout covers the whole frame, not just the header."""
        partial = struct.pack(">I", 64) + b'{"op":'
        with pytest.raises(ProtocolError, match="stalled"):
            read_one(partial, timeout=0.05, eof=False)


class TestResponses:
    def test_ok_response_merges_fields(self):
        assert ok_response(value=3) == {"ok": True, "value": 3}

    def test_error_response_shape(self):
        response = error_response("ABORTED", "write-write conflict",
                                  retry_after_ms=7, cause="write-write")
        assert response == {"ok": False, "error": "ABORTED",
                            "detail": "write-write conflict",
                            "retry_after_ms": 7, "cause": "write-write"}

    def test_error_response_omits_absent_fields(self):
        assert error_response("NO_TXN") == \
            {"ok": False, "error": "NO_TXN", "detail": ""}

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ProtocolError):
            error_response("EXPLODED")

    def test_every_declared_code_encodes(self):
        for code in ERROR_CODES:
            assert error_response(code)["error"] == code

    def test_declared_ops_are_canonical(self):
        assert OPS == ("BEGIN", "READ", "WRITE", "COMMIT", "ABORT", "PING")
