"""End-to-end server tests over the real asyncio wire path.

Every test stands up a :class:`StoreServer` on an ephemeral port,
drives it with the shared :class:`StoreClient`, and checks both the
structured responses and the server-side bookkeeping (session GC,
snapshot pins, watermarks, crash generations).
"""

import asyncio

from repro.oracle.live import LiveHistoryMonitor
from repro.store.loadgen import StoreClient, run_load
from repro.store.server import StoreServer
from repro.store.session import StoreConfig, shard_of


def config(**overrides) -> StoreConfig:
    defaults = dict(shards=2, seed=7)
    defaults.update(overrides)
    return StoreConfig(**defaults)


def drive(scenario, cfg=None, monitor=None, record_path=None):
    """Run ``scenario(server, port)`` against a live server."""
    async def runner():
        server = StoreServer(cfg or config(), monitor=monitor,
                             record_path=record_path)
        port = await server.start()
        try:
            return await scenario(server, port)
        finally:
            await server.stop()

    return asyncio.run(runner())


async def settle_sessions(server, timeout=2.0):
    """Wait for disconnected sessions to be garbage-collected."""
    waited = 0.0
    while server.sessions and waited < timeout:
        await asyncio.sleep(0.005)
        waited += 0.005


class TestTransactions:
    def test_commit_then_read_back(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            begun = await client.begin(label="writer")
            assert begun["ok"] and isinstance(begun["txn"], int)
            assert (await client.write("alpha", {"n": 1}))["ok"]
            committed = await client.commit()
            assert committed["ok"]
            sid = shard_of("alpha", server.config.shards)
            assert str(sid) in committed["commit_ts"]
            await client.begin(label="reader")
            read = await client.read("alpha")
            assert read == {"ok": True, "value": {"n": 1}}
            await client.commit()
            client.close()

        drive(scenario)

    def test_read_your_own_buffered_writes(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            await client.begin()
            await client.write("k", "draft")
            assert (await client.read("k"))["value"] == "draft"
            await client.write("k", "final")
            assert (await client.read("k"))["value"] == "final"
            await client.abort()
            # the abort discarded the buffer
            await client.begin()
            assert (await client.read("k"))["value"] is None
            await client.commit()
            client.close()

        drive(scenario)

    def test_missing_key_reads_null(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            await client.begin()
            assert (await client.read("never-written"))["value"] is None
            await client.commit()
            client.close()

        drive(scenario)

    def test_read_only_commit_is_fast_path(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            await client.begin()
            await client.read("x")
            committed = await client.commit()
            assert committed["ok"] and committed["read_only"]
            assert committed["commit_ts"] is None
            client.close()

        drive(scenario)

    def test_snapshot_isolation_across_concurrent_writer(self):
        """A pinned snapshot never sees a commit that happened after it."""
        async def scenario(server, port):
            setup = await StoreClient.connect(port)
            await setup.begin()
            await setup.write("si-key", "old")
            await setup.commit()
            reader = await StoreClient.connect(port)
            await reader.begin(label="reader")
            assert (await reader.read("si-key"))["value"] == "old"
            writer = await StoreClient.connect(port)
            await writer.begin(label="writer")
            await writer.write("si-key", "new")
            assert (await writer.commit())["ok"]
            # the reader's pinned snapshot still reads the old value
            assert (await reader.read("si-key"))["value"] == "old"
            await reader.commit()
            await setup.begin()
            assert (await setup.read("si-key"))["value"] == "new"
            await setup.commit()
            for client in (setup, reader, writer):
                client.close()

        drive(scenario)

    def test_first_committer_wins_aborts_second(self):
        async def scenario(server, port):
            a = await StoreClient.connect(port)
            b = await StoreClient.connect(port)
            await a.begin(label="a")
            await b.begin(label="b")
            await a.read("contested")
            await b.read("contested")
            await a.write("contested", "from-a")
            assert (await a.commit())["ok"]
            await b.write("contested", "from-b")
            failed = await b.commit()
            assert not failed["ok"]
            assert failed["error"] == "ABORTED"
            assert failed["cause"] == "write-write"
            assert failed["retry_after_ms"] >= 0
            # the winner's value is durable
            await a.begin()
            assert (await a.read("contested"))["value"] == "from-a"
            await a.commit()
            a.close()
            b.close()

        drive(scenario)


class TestStructuredErrors:
    def test_op_outside_txn_is_no_txn(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            for request in ({"op": "READ", "key": "k"},
                            {"op": "WRITE", "key": "k", "value": 1},
                            {"op": "COMMIT"}, {"op": "ABORT"}):
                response = await client.request(**request)
                assert response["error"] == "NO_TXN"
            client.close()

        drive(scenario)

    def test_double_begin_is_txn_open(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            await client.begin()
            assert (await client.begin())["error"] == "TXN_OPEN"
            await client.abort()
            client.close()

        drive(scenario)

    def test_bad_requests(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            assert (await client.request(op="EXPLODE"))["error"] == \
                "BAD_REQUEST"
            assert (await client.request(
                op="BEGIN", deadline_ms="soon"))["error"] == "BAD_REQUEST"
            await client.begin()
            assert (await client.request(
                op="READ", key=7))["error"] == "BAD_REQUEST"
            null_write = await client.request(op="WRITE", key="k",
                                              value=None)
            assert null_write["error"] == "BAD_REQUEST"
            assert "sentinel" in null_write["detail"]
            await client.abort()
            client.close()

        drive(scenario)

    def test_ping_reports_generations(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            pong = await client.ping()
            assert pong["ok"] and pong["generations"] == [0, 0]
            client.close()

        drive(scenario)


class TestRobustness:
    def test_admission_control_sheds_overloaded(self):
        async def scenario(server, port):
            a = await StoreClient.connect(port)
            b = await StoreClient.connect(port)
            await a.begin()
            shed = await b.begin()
            assert shed["error"] == "OVERLOADED"
            assert shed["retry_after_ms"] >= 0
            await a.commit()
            # capacity freed: the shed session gets in now
            assert (await b.begin())["ok"]
            await b.abort()
            a.close()
            b.close()

        drive(scenario, cfg=config(max_inflight=1))

    def test_deadline_expiry_is_structured_timeout(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            assert (await client.begin(deadline_ms=1))["ok"]
            await asyncio.sleep(0.02)
            expired = await client.read("k")
            assert expired["error"] == "TIMEOUT"
            # the transaction is gone; the session can begin anew
            assert (await client.read("k"))["error"] == "NO_TXN"
            assert (await client.begin())["ok"]
            await client.abort()
            client.close()

        drive(scenario)

    def test_disconnect_aborts_and_unpins(self):
        async def scenario(server, port):
            client = await StoreClient.connect(port)
            await client.begin()
            await client.read("pin-me")  # pins a shard snapshot
            await client.write("pin-me", 1)
            client.close()
            await settle_sessions(server)
            assert server.sessions == {}
            assert server.open_txns == {}
            assert all(s.pinned_transactions() == 0
                       for s in server.shards)

        drive(scenario)

    def test_crash_dooms_open_txns_but_keeps_published_data(self):
        async def scenario(server, port):
            writer = await StoreClient.connect(port)
            await writer.begin()
            await writer.write("crash-key", "survives")
            await writer.commit()
            sid = shard_of("crash-key", server.config.shards)

            victim = await StoreClient.connect(port)
            await victim.begin(label="victim")
            assert (await victim.read("crash-key"))["value"] == "survives"

            doomed = server.crash_shard(sid)
            assert [t.label for t in doomed] == ["victim"]
            failed = await victim.read("crash-key")
            assert not failed["ok"]
            assert failed["cause"] == "shard-crashed"
            assert (await victim.ping())["generations"][sid] == 1

            # recovery rolled back to the publish frontier: committed
            # data survives and new transactions proceed normally
            await victim.begin()
            assert (await victim.read("crash-key"))["value"] == "survives"
            await victim.write("crash-key", "again")
            assert (await victim.commit())["ok"]
            assert server.shards[sid].pinned_transactions() == 0
            writer.close()
            victim.close()

        drive(scenario)

    def test_commit_racing_crash_aborts_cleanly(self):
        """A prepare taken before a crash must not apply after it.

        The crash fires while the coordinator awaits the *second*
        shard's prepare — exactly the window the generation tags guard:
        the first shard's reservation is stale, so the whole multi-shard
        commit must abort instead of applying onto the recovered state.
        """
        async def scenario(server, port):
            keys = {}
            counter = 0
            while len(keys) < 2:
                key = f"race-{counter}"
                keys.setdefault(shard_of(key, server.config.shards), key)
                counter += 1
            client = await StoreClient.connect(port)
            await client.begin()
            for key in keys.values():
                await client.write(key, 1)
            second = server.shards[1]
            real_prepare = second._do_prepare

            def crash_then_prepare(command):
                server.crash_shard(0)
                return real_prepare(command)

            second._do_prepare = crash_then_prepare
            try:
                failed = await client.commit()
            finally:
                second._do_prepare = real_prepare
            assert not failed["ok"]
            assert failed["cause"] == "shard-crashed"
            # neither shard published anything
            await client.begin()
            for key in keys.values():
                assert (await client.read(key))["value"] is None
            await client.commit()
            assert all(not shard._prepared for shard in server.shards)
            client.close()

        drive(scenario)


class TestObservability:
    def test_metrics_endpoint_serves_prometheus_text(self):
        async def scenario(server, port):
            metrics_port = await server.start_metrics()
            client = await StoreClient.connect(port)
            await client.begin()
            await client.write("m", 1)
            await client.commit()
            client.close()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", metrics_port)
            writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            text = raw.decode("utf-8")
            assert text.startswith("HTTP/1.0 200")
            assert "sitm_store_txn_commits_total" in text
            assert "sitm_store_shard_generation" in text

        drive(scenario)

    def test_monitor_sees_every_completed_txn(self):
        monitor = LiveHistoryMonitor(shards=2, check_every=4)

        async def scenario(server, port):
            stats = await run_load(port, sessions=2, txns_per_session=6,
                                   keys=8, seed=11)
            await settle_sessions(server)
            return stats

        stats = drive(scenario, monitor=monitor)
        assert stats["commits"] == 12
        assert monitor.rows_seen >= 12
        assert monitor.checks_run >= 1
        assert monitor.violations == []

    def test_record_path_persists_replayable_rows(self, tmp_path):
        import json

        from repro.obs.export import validate_span_log
        from repro.oracle.live import check_rows

        path = tmp_path / "sessions.jsonl"

        async def scenario(server, port):
            await run_load(port, sessions=2, txns_per_session=4,
                           keys=8, seed=3)
            await settle_sessions(server)

        drive(scenario, record_path=path)
        text = path.read_text(encoding="utf-8")
        assert validate_span_log(text) == []
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) >= 8
        assert check_rows(rows, shards=2) == []


class TestLoadGenerator:
    def test_closed_loop_zipf_run_is_clean(self):
        monitor = LiveHistoryMonitor(shards=2, check_every=16)

        async def scenario(server, port):
            stats = await run_load(port, sessions=4, txns_per_session=10,
                                   keys=16, zipf_theta=0.9, seed=5)
            await settle_sessions(server)
            return stats

        stats = drive(scenario, monitor=monitor)
        assert stats["commits"] == 40
        assert stats["throughput_txn_s"] > 0
        assert 0.0 <= stats["abort_rate"] < 1.0
        assert monitor.violations == []

    def test_bench_artifact_validates(self):
        from repro.perf.bench import validate_artifact
        from repro.store.loadgen import bench_artifact

        async def scenario(server, port):
            return await run_load(port, sessions=2, txns_per_session=5,
                                  keys=8, seed=1)

        stats = drive(scenario)
        artifact = bench_artifact(stats, label="unit", seed=1)
        assert validate_artifact(artifact) == []
        cell = artifact["deterministic"]["store/kv/t2"]
        assert cell["commits"] == stats["commits"]
