"""Golden-corpus replay: recorded sessions re-check deterministically.

The JSONL files under ``tests/corpus/store/`` are real server
recordings (see ``make_corpus.py`` there for regeneration).  They pin
the wire-to-monitor row format: every row must stay span-schema valid,
clean recordings must replay quietly, and the deliberately-broken
recording must keep tripping the first-committer-wins check.
"""

import json
import pathlib

import pytest

from repro.obs.export import validate_span_log
from repro.oracle.live import check_rows

CORPUS = pathlib.Path(__file__).parent.parent / "corpus" / "store"
SHARDS = 2  # every corpus run used 2 shards (make_corpus.py)

FILES = ("clean_sessions.jsonl", "fcw_abort.jsonl",
         "broken_no_fcw.jsonl")


def load(name: str):
    text = (CORPUS / name).read_text(encoding="utf-8")
    return text, [json.loads(line) for line in text.splitlines() if line]


class TestCorpusShape:
    @pytest.mark.parametrize("name", FILES)
    def test_rows_are_span_schema_valid(self, name):
        text, rows = load(name)
        assert rows, f"{name} is empty"
        assert validate_span_log(text) == []

    @pytest.mark.parametrize("name", FILES)
    def test_rows_carry_the_store_section(self, name):
        _, rows = load(name)
        for row in rows:
            assert row["outcome"] in ("commit", "abort")
            store = row["store"]
            assert set(store) == {"shards", "ops"}
            for op in store["ops"]:
                kind, shard, key, _ = op
                assert kind in ("r", "w")
                assert 0 <= shard < SHARDS
                assert isinstance(key, str) and key

    def test_clean_corpus_contains_the_write_skew_pair(self):
        _, rows = load("clean_sessions.jsonl")
        labels = {row["label"] for row in rows}
        assert {"skew-a", "skew-b"} <= labels

    def test_fcw_corpus_records_the_loser(self):
        _, rows = load("fcw_abort.jsonl")
        outcomes = {row["label"]: row["outcome"] for row in rows}
        assert outcomes == {"fcw-a": "commit", "fcw-b": "abort"}
        losers = [row for row in rows if row["outcome"] == "abort"]
        assert losers[0]["cause"] == "write-write"


class TestReplay:
    def test_clean_sessions_replay_quietly(self):
        _, rows = load("clean_sessions.jsonl")
        assert check_rows(rows, shards=SHARDS) == []

    def test_legal_fcw_abort_replays_quietly(self):
        _, rows = load("fcw_abort.jsonl")
        assert check_rows(rows, shards=SHARDS) == []

    def test_broken_corpus_trips_first_committer_wins(self):
        _, rows = load("broken_no_fcw.jsonl")
        violations = check_rows(rows, shards=SHARDS)
        assert any(v.rule == "first-committer-wins" for v in violations)

    @pytest.mark.parametrize("name", FILES)
    def test_replay_is_deterministic(self, name):
        _, rows = load(name)
        first = [v.to_dict() for v in check_rows(rows, shards=SHARDS)]
        second = [v.to_dict() for v in check_rows(rows, shards=SHARDS)]
        assert first == second
