"""``sitm-store`` CLI tests: subcommands, artifacts, exit-code contract.

Exit codes are the ops-facing API: 2 for configuration errors (one
line on stderr), 1 for detected violations or a failed campaign, 0 for
success.  CI's ``store-smoke`` job relies on exactly these.
"""

import json
import pathlib

from repro.store.cli import build_parser, main

CORPUS = pathlib.Path(__file__).parent.parent / "corpus" / "store"


class TestExitCodes:
    def test_config_error_exits_2_with_one_stderr_line(self, capsys):
        assert main(["chaos", "--shards", "0"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("sitm-store: ")
        assert len(captured.err.strip().splitlines()) == 1

    def test_bad_chaos_plan_exits_2(self, capsys):
        assert main(["chaos", "--disconnect-rate", "1.5"]) == 2
        assert "sitm-store: " in capsys.readouterr().err

    def test_unreadable_check_path_exits_2(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCheck:
    def test_clean_corpus_exits_0(self, capsys):
        assert main(["check", str(CORPUS / "clean_sessions.jsonl"),
                     "--shards", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["violations"] == []
        assert report["rows"] > 0

    def test_legal_fcw_abort_exits_0(self):
        assert main(["check", str(CORPUS / "fcw_abort.jsonl"),
                     "--shards", "2"]) == 0

    def test_broken_corpus_exits_1(self, capsys):
        assert main(["check", str(CORPUS / "broken_no_fcw.jsonl"),
                     "--shards", "2"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert any(v["rule"] == "first-committer-wins"
                   for v in report["violations"])


class TestChaos:
    def test_quiet_campaign_exits_0_and_writes_report(self, tmp_path,
                                                      capsys):
        report_path = tmp_path / "report.json"
        code = main(["chaos", "--shards", "2", "--seed", "11",
                     "--sessions", "2", "--txns", "4", "--keys", "8",
                     "--report", str(report_path)])
        assert code == 0
        on_disk = json.loads(report_path.read_text(encoding="utf-8"))
        printed = json.loads(capsys.readouterr().out)
        assert on_disk == printed
        assert on_disk["ok"] is True

    def test_no_fcw_self_test_exits_0_when_caught(self, tmp_path):
        code = main(["chaos", "--shards", "2", "--seed", "12",
                     "--sessions", "2", "--txns", "2", "--keys", "8",
                     "--broken", "no-fcw",
                     "--dump-dir", str(tmp_path)])
        assert code == 0
        assert list(tmp_path.glob("store-violation-*.jsonl"))


class TestBench:
    def test_bench_writes_validated_artifact_and_scrape(self, tmp_path,
                                                        capsys):
        from repro.perf.bench import validate_artifact

        scrape = tmp_path / "metrics.prom"
        code = main(["bench", "--shards", "2", "--seed", "13",
                     "--label", "clitest", "--sessions", "2",
                     "--txns", "4", "--keys", "8",
                     "--out", str(tmp_path), "--scrape", str(scrape)])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["violations"] == []
        artifact_path = pathlib.Path(stats["artifact"])
        assert artifact_path.name == "BENCH_clitest.json"
        artifact = json.loads(artifact_path.read_text(encoding="utf-8"))
        assert validate_artifact(artifact) == []
        assert "store/kv/t2" in artifact["deterministic"]
        text = scrape.read_text(encoding="utf-8")
        assert "sitm_store_txn_commits_total" in text


class TestParser:
    def test_parser_declares_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("serve", "bench", "chaos", "check"):
            assert command in text

    def test_broken_choices_are_closed(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--broken", "no-clocks"])
        assert "invalid choice" in capsys.readouterr().err
