"""Unit tests for the live SI monitor over hand-built session rows.

The server integration tests feed the monitor real traffic; these
tests pin its semantics row by row — what it flags, what it tolerates,
what it refuses to ingest, and how watermark folding bounds retention
without losing violations.
"""

import json

import pytest

from repro.common.errors import StoreError
from repro.oracle.live import (LiveHistoryMonitor, STORE_ABORT_CAUSES,
                               check_rows)

_UID = [0]


def row(ops, outcome="commit", start_ts=None, commit_ts=None, cause=None,
        shard=0, uid=None, label=None):
    """A minimal session row: ``ops`` is [(kind, key, value), ...]."""
    if uid is None:
        _UID[0] += 1
        uid = _UID[0]
    meta = {}
    if start_ts is not None:
        meta["start_ts"] = start_ts
    if commit_ts is not None:
        meta["commit_ts"] = commit_ts
    return {
        "uid": uid, "thread": uid, "label": label or f"t{uid}",
        "outcome": outcome, "cause": cause,
        "store": {
            "shards": {str(shard): meta},
            "ops": [[kind, shard, key, value]
                    for kind, key, value in ops],
        },
    }


class TestCleanHistories:
    def test_serial_writers_are_quiet(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", "a")], start_ts=1, commit_ts=2))
        monitor.feed_row(row([("r", "k", "a"), ("w", "k", "b")],
                             start_ts=3, commit_ts=4))
        assert monitor.check() == []
        assert monitor.violations == []

    def test_read_your_own_write_is_legal(self):
        """Op order matters: w then r of the own value must replay."""
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("r", "k", None), ("w", "k", "mine"),
                              ("r", "k", "mine")],
                             start_ts=1, commit_ts=2))
        assert monitor.check() == []

    def test_write_skew_is_legal_under_si(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "x", 1), ("w", "y", 1)],
                             start_ts=1, commit_ts=2))
        monitor.feed_row(row([("r", "x", 1), ("w", "y", 0)],
                             start_ts=3, commit_ts=5))
        monitor.feed_row(row([("r", "y", 1), ("w", "x", 0)],
                             start_ts=3, commit_ts=6))
        assert monitor.check() == []

    def test_declared_abort_causes_are_quiet(self):
        monitor = LiveHistoryMonitor(shards=1)
        for cause in STORE_ABORT_CAUSES:
            monitor.feed_row(row([("w", "k", 1)], outcome="abort",
                                 start_ts=1, cause=cause))
        assert monitor.check() == []


class TestViolations:
    def test_first_committer_wins_violation(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", "a")], start_ts=1, commit_ts=2))
        monitor.feed_row(row([("w", "k", "b")], start_ts=1, commit_ts=3))
        found = monitor.check()
        assert any(v.rule == "first-committer-wins" for v in found)

    def test_stale_snapshot_read_violation(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", "new")], start_ts=1,
                             commit_ts=2))
        # starts after the commit yet reads the never-written value
        monitor.feed_row(row([("r", "k", None)], start_ts=3, commit_ts=4))
        assert monitor.check() != []

    def test_undeclared_abort_cause_is_flagged(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", 1)], outcome="abort",
                             start_ts=1, cause="cosmic-rays"))
        assert monitor.check() != []

    def test_violations_deduplicate_across_checks(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", "a")], start_ts=1, commit_ts=2))
        monitor.feed_row(row([("w", "k", "b")], start_ts=1, commit_ts=3))
        first = monitor.check()
        assert first != []
        assert monitor.check() == []  # same finding, reported once
        assert monitor.violations == first

    def test_check_every_triggers_on_ingest(self):
        monitor = LiveHistoryMonitor(shards=1, check_every=2)
        assert monitor.feed_row(row([("w", "k", "a")], start_ts=1,
                                    commit_ts=2)) == []
        fresh = monitor.feed_row(row([("w", "k", "b")], start_ts=1,
                                     commit_ts=3))
        assert any(v.rule == "first-committer-wins" for v in fresh)


class TestIngestValidation:
    def test_row_without_store_section_rejected(self):
        monitor = LiveHistoryMonitor(shards=1)
        with pytest.raises(StoreError, match="store"):
            monitor.feed_row({"uid": 1, "outcome": "commit"})

    def test_incomplete_outcome_rejected(self):
        monitor = LiveHistoryMonitor(shards=1)
        with pytest.raises(StoreError, match="outcome"):
            monitor.feed_row(row([], outcome="open"))

    def test_null_write_rejected(self):
        monitor = LiveHistoryMonitor(shards=1)
        with pytest.raises(StoreError, match="sentinel"):
            monitor.feed_row(row([("w", "k", None)], start_ts=1,
                                 commit_ts=2))

    def test_unknown_shard_rejected(self):
        monitor = LiveHistoryMonitor(shards=1)
        with pytest.raises(StoreError, match="unknown shard"):
            monitor.feed_row(row([("w", "k", 1)], start_ts=1,
                                 commit_ts=2, shard=5))

    def test_monitor_needs_a_shard(self):
        with pytest.raises(StoreError):
            LiveHistoryMonitor(shards=0)


class TestWatermarkFolding:
    def test_aborts_and_read_only_commits_drop_immediately(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", 1)], outcome="abort",
                             start_ts=1, cause="explicit"))
        # the server's read-only fast path never reserves a commit_ts
        monitor.feed_row(row([("r", "k", None)], start_ts=2))
        monitor.check()
        assert monitor.retained() == 0

    def test_writers_fold_into_initial_image(self):
        monitor = LiveHistoryMonitor(shards=1)
        for step in range(10):
            monitor.feed_row(row([("w", "k", step)],
                                 start_ts=2 * step + 1,
                                 commit_ts=2 * step + 2))
        monitor.note_watermark(0, 100)
        assert monitor.check() == []
        assert monitor.retained() == 0
        # the folded image must replay for a later reader: the newest
        # folded value, not the never-written default
        monitor.feed_row(row([("r", "k", 9)], start_ts=101,
                             commit_ts=102))
        assert monitor.check() == []

    def test_fold_preserves_newest_value_not_oldest(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", "old")], start_ts=1, commit_ts=2))
        monitor.feed_row(row([("w", "k", "new")], start_ts=3, commit_ts=4))
        monitor.note_watermark(0, 50)
        monitor.check()
        assert monitor.retained() == 0
        # a reader claiming to still see "old" is now a violation
        monitor.feed_row(row([("r", "k", "old")], start_ts=60,
                             commit_ts=61))
        assert monitor.check() != []

    def test_writers_above_watermark_are_retained(self):
        monitor = LiveHistoryMonitor(shards=1)
        monitor.feed_row(row([("w", "k", 1)], start_ts=1, commit_ts=2))
        monitor.feed_row(row([("w", "k", 2)], start_ts=9, commit_ts=10))
        monitor.note_watermark(0, 5)
        assert monitor.check() == []
        assert monitor.retained() == 1  # only the commit_ts=10 writer

    def test_fold_never_cuts_a_live_replay_window(self):
        """A writer inside a retained reader's snapshot window stays."""
        monitor = LiveHistoryMonitor(shards=1)
        # reader starts at 3, so the ts=4 writer's pre-state matters
        monitor.feed_row(row([("w", "k", "early")], start_ts=1,
                             commit_ts=2))
        monitor.feed_row(row([("w", "k", "late"), ("r", "other", None)],
                             start_ts=3, commit_ts=4))
        monitor.feed_row(row([("r", "k", "early"), ("w", "z", 1)],
                             start_ts=3, commit_ts=6))
        # watermark covers the first two writers but the commit_ts=6
        # record still replays a snapshot from ts=3
        monitor.note_watermark(0, 5)
        assert monitor.check() == []
        monitor.note_watermark(0, 50)
        assert monitor.check() == []
        assert monitor.retained() == 0


class TestArtifacts:
    def test_violation_dump_is_replayable(self, tmp_path):
        monitor = LiveHistoryMonitor(shards=1, dump_dir=tmp_path)
        monitor.feed_row(row([("w", "k", "a")], start_ts=1, commit_ts=2,
                             label="winner"))
        monitor.feed_row(row([("w", "k", "b")], start_ts=1, commit_ts=3,
                             label="loser"))
        assert monitor.check() != []
        assert len(monitor.dumps) == 1
        dump = monitor.dumps[0]
        rows = [json.loads(line) for line in
                dump.read_text(encoding="utf-8").splitlines()]
        assert {r["label"] for r in rows} == {"winner", "loser"}
        # the offline replay of the dump reproduces the finding
        replayed = check_rows(rows, shards=1)
        assert any(v.rule == "first-committer-wins" for v in replayed)
        summary = json.loads(
            dump.with_suffix(".violations.json").read_text())
        assert summary["violations"]

    def test_no_dump_without_violation(self, tmp_path):
        monitor = LiveHistoryMonitor(shards=1, dump_dir=tmp_path)
        monitor.feed_row(row([("w", "k", 1)], start_ts=1, commit_ts=2))
        assert monitor.check() == []
        assert monitor.dumps == []

    def test_check_rows_runs_full_pipeline(self):
        clean = [row([("w", "k", 1)], start_ts=1, commit_ts=2)]
        assert check_rows(clean, shards=1) == []
        broken = [row([("w", "k", 1)], start_ts=1, commit_ts=2),
                  row([("w", "k", 2)], start_ts=1, commit_ts=3)]
        assert check_rows(broken, shards=1) != []
