"""Chaos-campaign tests: every fault site fires, the report stays honest.

These run the real server, real sockets, and the real live monitor —
small seeded plans keep them fast while still covering disconnects,
slow-loris peers, shard stalls, forced crashes, admission floods, and
the ``no-fcw`` monitor self-test the acceptance criteria demand.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.store.chaos import CHAOS_SITES, ChaosPlan, run_chaos_campaign
from repro.store.session import StoreConfig


def small_config(**overrides) -> StoreConfig:
    defaults = dict(shards=2, seed=3, deadline_ms=4_000,
                    idle_timeout_ms=4_000)
    defaults.update(overrides)
    return StoreConfig(**defaults)


class TestPlan:
    def test_defaults_are_quiet(self):
        assert not ChaosPlan().active()

    def test_each_site_activates_the_plan(self):
        for overrides in (dict(disconnect_rate=0.5),
                          dict(slow_loris_sessions=1),
                          dict(stall_shard=0, stall_ms=10),
                          dict(crash_shard=0),
                          dict(flood_sessions=4)):
            assert ChaosPlan(**overrides).active()

    def test_round_trips_through_dict(self):
        plan = ChaosPlan(seed=9, disconnect_rate=0.25, crash_shard=1,
                         crash_after_txns=7, flood_sessions=3)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_ignores_unknown_keys(self):
        assert ChaosPlan.from_dict({"seed": 5, "vintage": 2014}).seed == 5

    def test_validation_rejects_bad_fields(self):
        for overrides in (dict(sessions=0), dict(txns_per_session=0),
                          dict(keys=0), dict(write_fraction=1.5),
                          dict(disconnect_rate=-0.1),
                          dict(zipf_theta=-1.0),
                          dict(slow_loris_sessions=-1),
                          dict(stall_shard=-2), dict(stall_ms=-5),
                          dict(crash_after_txns=-1),
                          dict(flood_sessions=-1)):
            with pytest.raises(ConfigError):
                ChaosPlan(**overrides)

    def test_sites_table_is_well_formed(self):
        """The docs render this table; every site documents itself."""
        assert len(CHAOS_SITES) == 5
        names = [site["site"] for site in CHAOS_SITES]
        assert names == sorted(names) or len(set(names)) == 5
        for site in CHAOS_SITES:
            assert site["layer"]
            assert site["fields"]
            assert site["effect"]
            for field in site["fields"].split(", "):
                assert hasattr(ChaosPlan(), field)


class TestCampaigns:
    def test_quiet_campaign_is_clean(self):
        plan = ChaosPlan(seed=1, sessions=3, txns_per_session=8, keys=16)
        report = run_chaos_campaign(plan, small_config())
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["commits"] > 0
        assert report["sessions_leaked"] == 0
        assert report["active_txns"] == 0
        assert report["pinned_txns"] == 0
        assert report["watermark_advanced"] is True
        assert report["probe_ok"] is True
        assert report["generations"] == [0, 0]
        assert report["rows_checked"] >= report["commits"]

    def test_all_sites_campaign_survives(self, tmp_path):
        plan = ChaosPlan(
            seed=2, sessions=4, txns_per_session=10, keys=24,
            disconnect_rate=0.15,
            slow_loris_sessions=1, slow_loris_delay_ms=100,
            stall_shard=1, stall_ms=30, stall_after_txns=4,
            crash_shard=0, crash_after_txns=8,
            flood_sessions=12)
        config = small_config(max_inflight=6)
        report = run_chaos_campaign(plan, config, out_dir=tmp_path)
        assert report["ok"] is True
        assert report["violations"] == []
        # each site left its fingerprint
        assert report["disconnects_injected"] > 0
        assert report["loris_dropped"] == 1
        assert report["shard_stalls"] == 1
        assert report["shard_crashes"] == 1
        assert report["generations"][0] == 1
        assert report["flood_shed"] > 0
        # and the service still drained cleanly
        assert report["sessions_leaked"] == 0
        assert report["active_txns"] == 0
        assert report["pinned_txns"] == 0
        assert report["probe_ok"] is True
        assert list(tmp_path.glob("store-violation-*")) == []

    def test_report_is_json_safe(self):
        import json

        plan = ChaosPlan(seed=4, sessions=2, txns_per_session=4, keys=8)
        report = run_chaos_campaign(plan, small_config())
        assert json.loads(json.dumps(report)) == report
        assert report["plan"] == plan.to_dict()
        assert report["config"]["shards"] == 2


class TestBrokenModes:
    def test_no_fcw_self_test_catches_the_violation(self, tmp_path):
        """Acceptance: the monitor must catch a disabled-FCW server."""
        plan = ChaosPlan(seed=5, sessions=2, txns_per_session=4, keys=8)
        report = run_chaos_campaign(plan, small_config(),
                                    broken="no-fcw", out_dir=tmp_path)
        assert report["broken"] == "no-fcw"
        assert report["monitor_caught"] is True
        assert report["ok"] is True
        assert any(v["rule"] == "first-committer-wins"
                   for v in report["violations"])
        assert report["violation_dumps"]
        assert list(tmp_path.glob("store-violation-*.jsonl"))

    def test_unknown_broken_mode_is_config_error(self):
        with pytest.raises(ConfigError, match="broken"):
            run_chaos_campaign(ChaosPlan(), broken="no-clocks")

    def test_broken_mode_does_not_mutate_caller_config(self):
        config = small_config()
        run_chaos_campaign(
            ChaosPlan(seed=6, sessions=2, txns_per_session=2, keys=8),
            config, broken="no-fcw")
        assert config.validate_fcw is True
        assert dataclasses.asdict(config)["validate_fcw"] is True
