"""Timing/accounting plumbing: waits, backoff and spill costs reach stats."""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def writer_storm(machine, threads=4, txns=15):
    """Writers to disjoint lines: contend only on the commit token."""
    base = machine.mvmalloc(8 * threads * txns)
    programs = []
    index = 0
    for _ in range(threads):
        specs = []
        for _ in range(txns):
            addr = base + index * 8
            index += 1

            def body(addr=addr):
                yield Write(addr, 1)

            specs.append(spec(body, "w"))
        programs.append(specs)
    return programs


class TestCommitTokenAccounting:
    def test_2pl_commit_waits_recorded(self):
        machine = Machine()
        programs = writer_storm(machine)
        stats = run_program(machine, "2PL", programs)
        waits = sum(t.commit_wait_cycles for t in stats.threads)
        assert waits > 0  # disjoint writers still queue on the token

    def test_si_has_no_commit_token(self):
        machine = Machine()
        programs = writer_storm(machine)
        stats = run_program(machine, "SI-TM", programs)
        waits = sum(t.commit_wait_cycles for t in stats.threads)
        assert waits == 0


class TestBackoffAccounting:
    def test_2pl_backoff_cycles_recorded_under_contention(self):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr)
            yield Compute(3)
            yield Write(addr, value + 1)

        programs = [[spec(body, "inc") for _ in range(20)]
                    for _ in range(4)]
        stats = run_program(machine, "2PL", programs)
        assert stats.total_aborts > 0
        assert sum(t.backoff_cycles for t in stats.threads) > 0

    def test_si_records_no_backoff(self):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr)
            yield Compute(3)
            yield Write(addr, value + 1)

        programs = [[spec(body, "inc") for _ in range(20)]
                    for _ in range(4)]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_aborts > 0
        assert sum(t.backoff_cycles for t in stats.threads) == 0


class TestRetryHistogram:
    @pytest.mark.parametrize("system", ["2PL", "SI-TM"])
    def test_histogram_totals_commits(self, system):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr)
            yield Write(addr, value + 1)

        programs = [[spec(body, "inc") for _ in range(15)]
                    for _ in range(4)]
        stats = run_program(machine, system, programs)
        assert sum(stats.retry_histogram.values()) == stats.total_commits
        retried = sum(count for retries, count
                      in stats.retry_histogram.items() if retries > 0)
        assert retried <= stats.total_aborts
