"""EagerLogTM tests: in-place updates, undo rollback, NACK stalls."""

import pytest

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.api import StallRequested
from repro.tm.logtm import EagerLogTM
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


@pytest.fixture
def tm(machine):
    return EagerLogTM(machine, SplitRandom(3))


def begin(tm, thread_id):
    txn, _ = tm.begin(thread_id, f"t{thread_id}", 0)
    return txn


class TestEagerVersioning:
    def test_writes_hit_memory_immediately(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 42)
        # eager version management: the store is in place pre-commit
        assert machine.plain_load(addr) == 42

    def test_undo_log_grows_per_write(self, machine, tm):
        addr = machine.mvmalloc(2)
        txn = begin(tm, 0)
        tm.write(txn, addr, 1)
        tm.write(txn, addr + 1, 2)
        assert len(txn.undo_log) == 2

    def test_commit_is_cheap_and_clears_log(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 9)
        cycles = tm.commit(txn, 0)
        assert cycles == machine.config.txn_overhead_cycles
        assert machine.plain_load(addr) == 9

    def test_abort_restores_old_values(self, machine, tm):
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 7)
        txn = begin(tm, 0)
        tm.write(txn, addr, 100)
        tm.write(txn, addr, 200)
        tm.abort(txn, AbortCause.EXPLICIT)
        assert machine.plain_load(addr) == 7

    def test_abort_cost_scales_with_log(self, machine, tm):
        base = machine.mvmalloc(8 * 20)
        small = begin(tm, 0)
        tm.write(small, base, 1)
        small_cost = tm.abort(small, AbortCause.EXPLICIT)
        big = begin(tm, 0)
        for i in range(20):
            tm.write(big, base + 8 * i, 1)
        big_cost = tm.abort(big, AbortCause.EXPLICIT)
        # backoff jitter aside, 20 undo entries dominate 1
        assert big_cost > small_cost + 10 * tm.UNDO_CYCLES


class TestNackStalls:
    def test_conflicting_read_stalls(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        reader = begin(tm, 1)
        with pytest.raises(StallRequested):
            tm.read(reader, addr)

    def test_conflicting_write_stalls(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        tm.read(reader, addr)
        writer = begin(tm, 1)
        with pytest.raises(StallRequested):
            tm.write(writer, addr, 1)

    def test_stall_budget_exhaustion_aborts_requester(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        reader = begin(tm, 1)
        for _ in range(tm.MAX_STALLS):
            with pytest.raises(StallRequested):
                tm.read(reader, addr)
        with pytest.raises(TransactionAborted):
            tm.read(reader, addr)

    def test_stall_clears_after_owner_commits(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 5)
        reader = begin(tm, 1)
        with pytest.raises(StallRequested):
            tm.read(reader, addr)
        tm.commit(writer, 0)
        value, _ = tm.read(reader, addr)
        assert value == 5


class TestEndToEnd:
    def test_counter_conserved(self):
        machine = Machine()
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr)
            yield Compute(3)
            yield Write(addr, value + 1)

        programs = [[spec(body, "inc") for _ in range(20)]
                    for _ in range(4)]
        stats = run_program(machine, "LogTM", programs)
        assert stats.total_commits == 80
        assert machine.plain_load(addr) == 80

    def test_isolation_under_contention(self):
        """Transfers conserve money even with in-place eager updates."""
        machine = Machine()
        accounts = machine.mvmalloc(8 * 8)
        for i in range(8):
            machine.plain_store(accounts + i * 8, 50)

        def transfer(src, dst):
            def body():
                balance = yield Read(accounts + src * 8)
                yield Compute(2)
                if balance >= 10:
                    yield Write(accounts + src * 8, balance - 10)
                    other = yield Read(accounts + dst * 8)
                    yield Write(accounts + dst * 8, other + 10)
            return body

        rng = SplitRandom(5)
        programs = []
        for tid in range(4):
            thread_rng = rng.split(tid)
            specs = []
            for _ in range(20):
                src, dst = thread_rng.distinct(2, 0, 8)
                specs.append(spec(transfer(src, dst), "transfer"))
            programs.append(specs)
        run_program(machine, "LogTM", programs)
        total = sum(machine.plain_load(accounts + i * 8) for i in range(8))
        assert total == 400
