"""Differential capacity suite: bounded backends change nothing until
their bounds bite, and when they bite the aborts are declared.

Three contracts pin the capacity feature:

* **identity at infinity** — explicitly huge ``read_set_limit``/
  ``write_set_limit``/``version_buffer_limit`` values are byte-identical
  to the unset defaults on every backend over the whole schedule corpus:
  same :class:`RunStats`, same final memory, same step count, same
  TM-interface call history.  The charge helpers sit on the hot
  read/write paths, so this is the "no perturbation" half of the
  feature's contract.
* **path parity** — the flattened fast loop and the fully-observed
  legacy loop agree under finite limits, both when the limits are
  generous (charges execute but never fire) and when they bite
  (HybridHTM's fallback keeps tight-limit runs terminating without a
  retry policy, so both loop shapes cross the capacity-abort path).
* **declared causes** — every capacity abort carries its declared
  :class:`AbortCause` (``read-capacity``/``write-capacity``/
  ``version-capacity``), each backend's observed causes stay inside its
  ``ABORT_CAUSES`` contract, and SI-TM — invisible readers — never
  read-capacity aborts.

The Hypothesis properties extend PR 5's liveness theorem to capacity:
limits at or above a schedule's footprint never capacity-abort, and
limits below it still terminate oracle-clean under an escalating retry
policy (golden-token transactions run capacity-suppressed, like a
software fallback).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AbortCause
from repro.oracle.fuzz import apply_config_patch, check_schedule_run, \
    generate_schedule
from repro.sim.retry import RetryPolicy
from repro.tm import SYSTEMS
from tests.sim.test_fastpath_differential import (CLEAN_CORPUS, _load,
                                                  _run_schedule_variant,
                                                  _strip)

ALL_SYSTEMS = sorted(SYSTEMS)
CAPACITY_CAUSES = {AbortCause.READ_CAPACITY.value,
                   AbortCause.WRITE_CAPACITY.value,
                   AbortCause.VERSION_CAPACITY.value}
TIGHT_RETRY = RetryPolicy(attempt_budget=3, stall_budget=8,
                          starvation_age_cycles=20_000)


def _with_limits(schedule, read=0, write=0, buffer=0):
    """Patch capacity limits into a schedule, preserving its tm config."""
    tm = dict(schedule.get("config", {}).get("tm", {}))
    if read:
        tm["read_set_limit"] = read
    if write:
        tm["write_set_limit"] = write
    if buffer:
        tm["version_buffer_limit"] = buffer
    return apply_config_patch(schedule, {"tm": tm})


# --------------------------------------------------------------------
# identity at infinity
# --------------------------------------------------------------------

@pytest.mark.parametrize("path", CLEAN_CORPUS,
                         ids=[p.stem for p in CLEAN_CORPUS])
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_unbounded_limits_are_byte_identical_to_unset(path, system):
    schedule = _load(path)
    huge = _with_limits(schedule, read=10**6, write=10**6, buffer=10**6)
    baseline = _run_schedule_variant(schedule, system, observed=False)
    limited = _run_schedule_variant(huge, system, observed=False)
    assert _strip(baseline) == _strip(limited)


# --------------------------------------------------------------------
# path parity under finite limits
# --------------------------------------------------------------------

#: randomized contended schedules over 4 cells: any footprint fits in
#: 4 lines / 4 buffer entries, so limits of 4 are finite yet never fire
CONTENDED = [generate_schedule(23, index, threads=3, txns=2, cells=4, ops=3)
             for index in range(3)]


@pytest.mark.parametrize("index", range(len(CONTENDED)))
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_fast_path_parity_under_generous_finite_limits(system, index):
    schedule = _with_limits(CONTENDED[index], read=4, write=4, buffer=4)
    fast = _run_schedule_variant(schedule, system, observed=False)
    observed = _run_schedule_variant(schedule, system, observed=True)
    assert fast["fast"] and not observed["fast"]
    assert _strip(fast) == _strip(observed)
    # finite-but-roomy limits must never fire
    assert not any("exceed limit" in entry[-1] for entry in fast["tm_log"]
                   if entry[0] in ("read!", "write!"))


#: two-line writers under write_set_limit=1: hardware attempts must
#: capacity-abort, and only HybridHTM's serialized fallback lets the
#: run terminate WITHOUT a retry policy — which keeps the fast loop
#: eligible, so both loop shapes cross the capacity-abort path
WIDE = {
    "name": "cap-wide",
    "initial": [0, 0, 0, 0],
    "threads": [
        [{"label": "w0", "ops": [["a", 0, 1], ["a", 1, 2]]},
         {"label": "w0b", "ops": [["a", 2, 1]]}],
        [{"label": "w1", "ops": [["a", 1, 4], ["a", 2, 8]]}],
        [{"label": "w2", "ops": [["a", 3, 16], ["a", 0, 32]]}],
    ],
}


def test_hybrid_capacity_aborts_agree_between_paths():
    schedule = _with_limits(WIDE, write=1)
    fast = _run_schedule_variant(schedule, "HybridHTM", observed=False)
    observed = _run_schedule_variant(schedule, "HybridHTM", observed=True)
    assert fast["fast"] and not observed["fast"]
    assert _strip(fast) == _strip(observed)
    assert any(entry[0] == "write!" and "exceed limit" in entry[-1]
               for entry in fast["tm_log"])
    # the commutative totals survive the fallback commits
    assert fast["final"] == [33, 6, 9, 16]


# --------------------------------------------------------------------
# declared causes
# --------------------------------------------------------------------

#: each transaction reads two lines, writes two more: footprint of
#: 4 read lines, 2 write lines and 2 buffer entries per attempt
PROBE = {
    "name": "cap-probe",
    "initial": [0, 0, 0, 0],
    "threads": [
        [{"label": "p0", "ops": [["r", 0], ["r", 1],
                                 ["a", 2, 1], ["a", 3, 2]]}],
        [{"label": "p1", "ops": [["r", 2], ["r", 3],
                                 ["a", 0, 4], ["a", 1, 8]]}],
    ],
}

LIMIT_KEYS = {
    AbortCause.READ_CAPACITY.value: "read_set_limit",
    AbortCause.WRITE_CAPACITY.value: "write_set_limit",
    AbortCause.VERSION_CAPACITY.value: "version_buffer_limit",
}


@pytest.mark.parametrize("cause", sorted(LIMIT_KEYS))
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_capacity_aborts_carry_declared_cause(system, cause):
    patch = {"tm": {LIMIT_KEYS[cause]: 1}, "retry": TIGHT_RETRY.to_dict()}
    schedule = apply_config_patch(PROBE, patch)
    violations, _, history = check_schedule_run(schedule, system)
    assert violations == [], [str(v) for v in violations]
    assert history.committed()
    seen = {rec.abort_cause for rec in history.aborts()}
    declared = {c.value for c in SYSTEMS[system].ABORT_CAUSES}
    assert seen <= declared, seen - declared
    if cause == AbortCause.READ_CAPACITY.value and system == "SI-TM":
        # invisible readers: SI-TM tracks no read set, so no bound on
        # it can ever fire — that asymmetry IS the paper's point
        assert cause not in seen
    else:
        assert cause in seen, (cause, seen)


# --------------------------------------------------------------------
# capacity liveness properties
# --------------------------------------------------------------------

PROPERTY_SYSTEMS = ("2PL", "SI-TM", "HybridHTM")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**8), index=st.integers(0, 3))
def test_limits_at_footprint_never_capacity_abort(seed, index):
    """Limits >= the whole address space (3 cells, one line each) are
    >= any transaction's footprint, so no capacity abort can fire and
    the run stays clean with no retry policy at all."""
    schedule = _with_limits(
        generate_schedule(seed, index, threads=2, txns=2, cells=3, ops=3),
        read=3, write=3, buffer=3)
    for system in PROPERTY_SYSTEMS:
        violations, _, history = check_schedule_run(schedule, system, seed)
        assert violations == [], [str(v) for v in violations]
        assert not (CAPACITY_CAUSES
                    & {rec.abort_cause for rec in history.aborts()})


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**8), limit=st.integers(1, 2))
def test_tight_limits_terminate_oracle_clean(seed, limit):
    """Limits below a transaction's footprint doom every hardware
    attempt, yet the run must still terminate and replay oracle-clean:
    HybridHTM through its serialized fallback, everyone else through
    golden-token escalation (which runs capacity-suppressed)."""
    schedule = apply_config_patch(
        generate_schedule(seed, 0, threads=2, txns=1, cells=4, ops=3),
        {"tm": {"read_set_limit": limit, "write_set_limit": limit,
                "version_buffer_limit": limit},
         "retry": TIGHT_RETRY.to_dict()})
    for system in PROPERTY_SYSTEMS:
        violations, _, history = check_schedule_run(schedule, system, seed)
        assert violations == [], [str(v) for v in violations]
        assert history is not None and history.committed()
        declared = {c.value for c in SYSTEMS[system].ABORT_CAUSES}
        seen = {rec.abort_cause for rec in history.aborts()}
        assert seen <= declared, seen - declared
