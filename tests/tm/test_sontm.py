"""SONTM conflict-serializability tests: SON ranges, histories, edges."""

import pytest

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.tm.sontm import SONTM


@pytest.fixture
def tm(machine):
    return SONTM(machine, SplitRandom(3))


def begin(tm, thread_id):
    txn, _ = tm.begin(thread_id, f"t{thread_id}", 0)
    return txn


class TestRelaxedConcurrency:
    def test_read_write_conflict_tolerated(self, machine, tm):
        """CS's raison d'être: a single rw conflict orders, not aborts."""
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        tm.commit(reader, 0)  # serialises before the writer

    def test_reader_before_committed_writer_orders_correctly(
            self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        # the reader's upper bound sits below the writer's SON
        assert reader.son_hi is not None

    def test_cyclic_dependency_aborts(self, machine, tm):
        """r1(A) w2(A) r2(B)... classic cycle: one of the two must die."""
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.read(t1, a)
        tm.read(t2, b)
        tm.write(t2, a, 1)   # t1 before t2
        tm.write(t1, b, 1)   # t2 before t1 -> cycle
        tm.commit(t1, 0)     # t1 commits, constraining t2 both ways
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(t2, 0)
        assert exc.value.cause is AbortCause.SON_RANGE_EMPTY

    def test_read_after_committed_write_forces_lo(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        reader = begin(tm, 1)
        tm.read(reader, addr)
        assert reader.son_lo > 0
        tm.commit(reader, 0)

    def test_figure6_temporal_cycle_aborts_long_reader(self, machine, tm):
        addrs = [machine.mvmalloc(1) for _ in range(5)]
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addrs[0])          # A before writer's commit
        tm.write(writer, addrs[0], 1)
        tm.write(writer, addrs[4], 1)
        tm.commit(writer, 0)
        for addr in addrs[1:]:
            tm.read(reader, addr)          # E after writer's commit
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(reader, 0)
        assert exc.value.cause is AbortCause.SON_RANGE_EMPTY


class TestWriteHistories:
    def test_write_numbers_recorded(self, machine, tm):
        addr = machine.mvmalloc(1)
        line = machine.address_map.line_of(addr)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        assert line in tm.write_numbers

    def test_read_history_constrains_later_writer(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        tm.read(reader, addr)
        tm.commit(reader, 0)
        writer = begin(tm, 1)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        line = machine.address_map.line_of(addr)
        assert tm.write_numbers[line] > tm.read_history[line] - 1

    def test_writes_published_at_commit(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 42)
        assert machine.plain_load(addr) == 0
        tm.commit(writer, 0)
        assert machine.plain_load(addr) == 42


class TestAbortHygiene:
    def test_abort_severs_edges(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr, 1)
        tm.abort(reader, AbortCause.EXPLICIT)
        assert reader not in writer.after
        tm.commit(writer, 0)

    def test_committed_edges_skip_dead_transactions(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr, 1)
        tm.abort(writer, AbortCause.EXPLICIT)
        tm.commit(reader, 0)   # must not see constraints from the dead txn
        assert reader.son_hi is None or reader.son_lo <= reader.son_hi
