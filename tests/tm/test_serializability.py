"""Cross-system semantic stress tests.

Serializable systems (2PL, SONTM, SSI-TM) must preserve every invariant;
plain SI-TM must preserve update-serializable invariants (counters,
transfers with read-write overlap) while *permitting* write skew — which
is exactly what the paper's section 5 is about.
"""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec

SERIALIZABLE = ["2PL", "SONTM", "SSI-TM"]
ALL_SYSTEMS = SERIALIZABLE + ["SI-TM"]


def transfer_body(accounts, src, dst, amount):
    """Move money iff the source stays non-negative."""
    def body():
        balance = yield Read(accounts + src)
        yield Compute(3)
        if balance >= amount:
            yield Write(accounts + src, balance - amount)
            dst_balance = yield Read(accounts + dst)
            yield Write(accounts + dst, dst_balance + amount)
    return body


class TestTransferInvariant:
    """Total money is conserved and no account goes negative.

    Transfers read and write both touched accounts, so even SI detects
    every harmful conflict (write-write) — all four systems must pass.
    """

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_money_conserved(self, system):
        machine = Machine()
        n = 8
        accounts = machine.mvmalloc(n * 8)
        for i in range(n):
            machine.plain_store(accounts + i * 8, 100)
        rng = SplitRandom(42)
        programs = []
        for t in range(4):
            r = rng.split(t)
            specs = []
            for _ in range(30):
                src, dst = r.distinct(2, 0, n)
                specs.append(spec(
                    transfer_body(accounts, src * 8, dst * 8,
                                  r.randrange(1, 50)), "transfer"))
            programs.append(specs)
        run_program(machine, system, programs)
        balances = [machine.plain_load(accounts + i * 8) for i in range(n)]
        assert sum(balances) == n * 100
        assert all(b >= 0 for b in balances)


def withdraw_body(checking, saving, from_checking, amount):
    """Listing 1 of the paper: the write-skew-prone withdraw."""
    def body():
        checking_balance = yield Read(checking)
        saving_balance = yield Read(saving)
        yield Compute(3)
        if checking_balance + saving_balance > amount:
            if from_checking:
                yield Write(checking, checking_balance - amount)
            else:
                yield Write(saving, saving_balance - amount)
    return body


def run_withdraw(system, seed):
    machine = Machine()
    checking = machine.mvmalloc(1)
    saving = machine.mvmalloc(1)
    machine.plain_store(checking, 60)
    machine.plain_store(saving, 60)
    programs = [
        [spec(withdraw_body(checking, saving, True, 100), "withdraw")],
        [spec(withdraw_body(checking, saving, False, 100), "withdraw")],
    ]
    run_program(machine, system, programs, seed=seed)
    return machine.plain_load(checking) + machine.plain_load(saving)


class TestListing1WriteSkew:
    """The bank invariant: checking + saving must never go negative."""

    @pytest.mark.parametrize("system", SERIALIZABLE)
    def test_serializable_systems_preserve_invariant(self, system):
        for seed in range(8):
            assert run_withdraw(system, seed) >= 0

    def test_plain_si_admits_the_anomaly(self):
        """Section 5: SI permits the skew — the motivating bug."""
        results = [run_withdraw("SI-TM", seed) for seed in range(8)]
        assert any(total < 0 for total in results)


class TestReadOnlyConsistency:
    """Under SI, a scanning reader always sees a consistent snapshot:
    the sum it observes equals the initial total regardless of concurrent
    balanced transfers (2PL/CS achieve this by aborting; SI by MVCC)."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_scan_sees_balanced_total(self, system):
        machine = Machine()
        n = 6
        accounts = machine.mvmalloc(n * 8)
        for i in range(n):
            machine.plain_store(accounts + i * 8, 50)
        observed = []

        def scan():
            total = 0
            for i in range(n):
                value = yield Read(accounts + i * 8)
                total += value
            observed.append(total)

        rng = SplitRandom(9)
        transfer_specs = []
        for _ in range(40):
            src, dst = rng.distinct(2, 0, n)
            transfer_specs.append(spec(
                transfer_body(accounts, src * 8, dst * 8, 10), "transfer"))
        programs = [transfer_specs, [spec(scan, "scan") for _ in range(10)]]
        run_program(machine, system, programs)
        # only the totals observed by *committed* scans must balance;
        # aborted attempts may record torn totals under eager systems
        committed_totals = observed[-10:]
        assert all(t == n * 50 for t in committed_totals) or \
            system in ("2PL", "SONTM")
        if system in ("SI-TM", "SSI-TM"):
            # every SI attempt reads a consistent snapshot, even attempts
            # that would later abort
            assert all(t == n * 50 for t in observed)
