"""SI-TM tests: snapshot reads, invisible readers, WW-only validation."""

import pytest

from repro.common.config import (
    MVMConfig,
    SimConfig,
    TMConfig,
    VersionCapPolicy,
)
from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.sitm import SnapshotIsolationTM


@pytest.fixture
def tm(machine):
    return SnapshotIsolationTM(machine, SplitRandom(3))


def begin(tm, thread_id, attempt=0):
    txn, _ = tm.begin(thread_id, f"t{thread_id}", attempt)
    return txn


class TestSnapshotSemantics:
    def test_reader_sees_pre_transaction_state(self, machine, tm):
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 5)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.write(writer, addr, 9)
        tm.commit(writer, 0)
        # reader's snapshot predates the writer's commit
        assert tm.read(reader, addr)[0] == 5

    def test_new_transaction_sees_committed_state(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 9)
        tm.commit(writer, 0)
        late = begin(tm, 1)
        assert tm.read(late, addr)[0] == 9

    def test_reads_own_writes(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 4)
        assert tm.read(txn, addr)[0] == 4

    def test_repeatable_reads_under_concurrent_commits(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        first = tm.read(reader, addr)[0]
        writer = begin(tm, 1)
        tm.write(writer, addr, 123)
        tm.commit(writer, 0)
        assert tm.read(reader, addr)[0] == first

    def test_invisible_readers_doom_nothing(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        reader = begin(tm, 1)
        tm.read(reader, addr)
        assert writer.doomed is None and reader.doomed is None


class TestConflictDetection:
    def test_no_abort_on_read_write_conflict(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        tm.read(reader, addr)
        writer = begin(tm, 1)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        tm.commit(reader, 0)  # must not raise: SI ignores rw conflicts

    def test_write_write_conflict_aborts_second(self, machine, tm):
        addr = machine.mvmalloc(1)
        first = begin(tm, 0)
        second = begin(tm, 1)
        tm.write(first, addr, 1)
        tm.write(second, addr, 2)
        tm.commit(first, 0)
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(second, 0)
        assert exc.value.cause is AbortCause.WRITE_WRITE

    def test_non_overlapping_writers_both_commit(self, machine, tm):
        addr = machine.mvmalloc(1)
        first = begin(tm, 0)
        tm.write(first, addr, 1)
        tm.commit(first, 0)
        second = begin(tm, 1)  # starts after first committed
        tm.write(second, addr, 2)
        tm.commit(second, 0)
        assert machine.plain_load(addr) == 2

    def test_read_only_commit_is_free(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.read(txn, addr)
        assert tm.commit(txn, 0) == 0

    def test_write_write_on_disjoint_lines_commits(self, machine, tm):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, a, 1)
        tm.write(t2, b, 2)
        tm.commit(t1, 0)
        tm.commit(t2, 0)
        assert machine.plain_load(a) == 1
        assert machine.plain_load(b) == 2


class TestPromotedReads:
    def test_promoted_read_validates_like_write(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.read(txn, addr, promote=True)
        tm.write(txn, addr + 8, 1)      # different line: stays a writer
        writer = begin(tm, 1)
        tm.write(writer, addr, 5)
        tm.commit(writer, 0)
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(txn, 0)
        assert exc.value.cause is AbortCause.WRITE_WRITE

    def test_promoted_read_creates_no_version(self, machine, tm):
        addr = machine.mvmalloc(1)
        line = machine.address_map.line_of(addr)
        txn = begin(tm, 0)
        tm.read(txn, addr, promote=True)
        tm.write(txn, addr + 8, 1)
        tm.commit(txn, 0)
        assert machine.mvm.live_version_count(line) == 0

    def test_promote_only_txn_not_read_only(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.read(txn, addr, promote=True)
        assert not txn.is_read_only


class TestVersionCap:
    def _machine(self, policy):
        return Machine(SimConfig(mvm=MVMConfig(
            max_versions=2, cap_policy=policy, coalescing=False)))

    def test_fifth_version_aborts_writer(self):
        machine = self._machine(VersionCapPolicy.ABORT_WRITER)
        tm = SnapshotIsolationTM(machine, SplitRandom(3))
        addr = machine.mvmalloc(1)
        pins = []
        for i in range(4):
            pin = begin(tm, 2 + i)       # active snapshots pin history
            pins.append(pin)
            writer = begin(tm, 0)
            tm.write(writer, addr, i)
            if i < 2:
                tm.commit(writer, 0)
            else:
                with pytest.raises(TransactionAborted) as exc:
                    tm.commit(writer, 0)
                assert exc.value.cause is AbortCause.VERSION_OVERFLOW
                break

    def test_drop_oldest_aborts_old_reader_instead(self):
        machine = self._machine(VersionCapPolicy.DROP_OLDEST)
        tm = SnapshotIsolationTM(machine, SplitRandom(3))
        addr = machine.mvmalloc(1)
        old_reader = begin(tm, 5)
        tm.read(old_reader, addr)  # snapshot of the implicit base
        for i in range(3):
            pin = begin(tm, 2 + i)
            writer = begin(tm, 0)
            tm.write(writer, addr, i)
            tm.commit(writer, 0)   # never aborts under DROP_OLDEST
        with pytest.raises(TransactionAborted) as exc:
            tm.read(old_reader, addr)
        assert exc.value.cause is AbortCause.SNAPSHOT_TOO_OLD


class TestDeltaProtocol:
    def test_begin_stalls_when_delta_exhausted(self):
        machine = Machine(SimConfig(mvm=MVMConfig(commit_delta=3)))
        tm = SnapshotIsolationTM(machine, SplitRandom(3))
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        tm.write(writer, addr, 1)
        machine.clock.begin_commit()  # a commit in flight
        txn1, _ = tm.begin(1, "a", 0)
        txn2, _ = tm.begin(2, "b", 0)
        assert txn1 is not None
        assert txn2 is None  # must stall


class TestWordGranularityCommit:
    def _tm(self):
        machine = Machine(SimConfig(tm=TMConfig(
            word_grain_commit_filter=True)))
        return machine, SnapshotIsolationTM(machine, SplitRandom(3))

    def test_false_sharing_filtered(self):
        machine, tm = self._tm()
        base = machine.mvmalloc(8)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, base, 1)       # word 0
        tm.write(t2, base + 5, 2)   # word 5, same line
        tm.commit(t1, 0)
        tm.commit(t2, 0)            # line-level WW, but words disjoint
        assert machine.plain_load(base) == 1
        assert machine.plain_load(base + 5) == 2

    def test_true_word_conflict_still_aborts(self):
        machine, tm = self._tm()
        base = machine.mvmalloc(8)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, base, 1)
        tm.write(t2, base, 2)
        tm.commit(t1, 0)
        with pytest.raises(TransactionAborted):
            tm.commit(t2, 0)


class TestAbortCleanup:
    def test_abort_is_idempotent_after_commit_failure(self, machine, tm):
        addr = machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, addr, 1)
        tm.write(t2, addr, 2)
        tm.commit(t1, 0)
        with pytest.raises(TransactionAborted):
            tm.commit(t2, 0)
        tm.abort(t2, AbortCause.WRITE_WRITE)  # engine's follow-up call
        assert len(machine.mvm.active) == 0

    def test_no_undo_needed_previous_version_survives(self, machine, tm):
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 7)
        pin = begin(tm, 2)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, addr, 1)
        tm.write(t2, addr, 2)
        tm.commit(t1, 0)
        with pytest.raises(TransactionAborted):
            tm.commit(t2, 0)
        assert tm.read(pin, addr)[0] == 7  # pinned snapshot intact


class TestConventionalRegionGuard:
    def test_write_to_conventional_address_rejected(self, machine, tm):
        from repro.common.errors import TMError

        addr = machine.malloc(1)
        txn = begin(tm, 0)
        with pytest.raises(TMError):
            tm.write(txn, addr, 1)

    def test_read_of_conventional_address_allowed(self, machine, tm):
        addr = machine.malloc(1)
        machine.plain_store(addr, 9)
        txn = begin(tm, 0)
        assert tm.read(txn, addr)[0] == 9

    def test_promotion_of_conventional_read_is_noop(self, machine, tm):
        addr = machine.malloc(1)
        txn = begin(tm, 0)
        tm.read(txn, addr, promote=True)
        assert txn.is_read_only  # nothing joined the validation set
