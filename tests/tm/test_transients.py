"""Transient-spill path tests (section 4.2's temporary-ID mechanism).

When an uncommitted transactionally-written line is evicted from the
private caches, SI-TM stores it in the MVM under a temporary owner ID
instead of aborting — the mechanism behind unbounded transactions.
"""

import dataclasses

import pytest

from repro.common.config import CacheConfig, MachineConfig, SimConfig
from repro.common.rng import SplitRandom
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SnapshotIsolationTM
from repro.tm.ops import Write


def tiny_cache_machine():
    """A machine whose private caches hold almost nothing."""
    machine_config = MachineConfig(
        cores=2,
        l1d=CacheConfig(size_bytes=4 * 64, associativity=1,
                        latency_cycles=4),
        l2=CacheConfig(size_bytes=4 * 64, associativity=1,
                       latency_cycles=8))
    return Machine(SimConfig(machine=machine_config))


class TestTransientSpills:
    def test_big_write_set_spills_and_commits(self):
        machine = tiny_cache_machine()
        per_line = machine.address_map.words_per_line
        lines = 64
        base = machine.mvmalloc(lines * per_line)

        def bulk():
            for i in range(lines):
                yield Write(base + i * per_line, i + 1)

        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        stats = Engine(tm, [[TransactionSpec(bulk, "bulk")]]).run()
        assert stats.total_commits == 1
        assert stats.total_aborts == 0
        for i in range(lines):
            assert machine.plain_load(base + i * per_line) == i + 1

    def test_transients_dropped_after_commit(self):
        machine = tiny_cache_machine()
        per_line = machine.address_map.words_per_line
        base = machine.mvmalloc(32 * per_line)

        def bulk():
            for i in range(32):
                yield Write(base + i * per_line, 1)

        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        Engine(tm, [[TransactionSpec(bulk, "bulk")]]).run()
        for i in range(32):
            line = machine.address_map.line_of(base + i * per_line)
            assert machine.mvm.load_transient(line, 0) is None

    def test_spill_charges_shared_level_cycles(self):
        """The spilling run costs more cycles than a no-pressure run."""
        results = {}
        for name, factory in (("tiny", tiny_cache_machine),
                              ("roomy", Machine)):
            machine = factory()
            per_line = machine.address_map.words_per_line
            base = machine.mvmalloc(48 * per_line)

            def bulk():
                for i in range(48):
                    yield Write(base + i * per_line, 1)

            tm = SnapshotIsolationTM(machine, SplitRandom(1))
            stats = Engine(tm, [[TransactionSpec(bulk, "bulk")]]).run()
            results[name] = stats.makespan_cycles
        assert results["tiny"] > results["roomy"]
