"""2PL baseline tests: eager requester-wins conflict matrix, commit token."""

import pytest

from repro.common.config import SimConfig, TMConfig
from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.tm.twopl import TwoPhaseLockingTM


@pytest.fixture
def tm(machine):
    return TwoPhaseLockingTM(machine, SplitRandom(3))


def begin(tm, thread_id, attempt=0):
    txn, _ = tm.begin(thread_id, f"t{thread_id}", attempt)
    return txn


class TestConflictMatrix:
    """Eager detection: every RW/WW conflict dooms the *other* side."""

    def test_read_vs_writer_dooms_writer(self, machine, tm):
        addr = machine.mvmalloc(1)
        writer = begin(tm, 0)
        reader = begin(tm, 1)
        tm.write(writer, addr, 1)
        tm.read(reader, addr)
        assert writer.doomed is AbortCause.READ_WRITE
        assert reader.doomed is None

    def test_write_vs_reader_dooms_reader(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr, 1)
        assert reader.doomed is AbortCause.READ_WRITE

    def test_write_vs_writer_dooms_first_writer(self, machine, tm):
        addr = machine.mvmalloc(1)
        first = begin(tm, 0)
        second = begin(tm, 1)
        tm.write(first, addr, 1)
        tm.write(second, addr, 2)
        assert first.doomed is AbortCause.WRITE_WRITE

    def test_concurrent_readers_coexist(self, machine, tm):
        addr = machine.mvmalloc(1)
        r1, r2 = begin(tm, 0), begin(tm, 1)
        tm.read(r1, addr)
        tm.read(r2, addr)
        assert r1.doomed is None and r2.doomed is None

    def test_disjoint_lines_no_conflict(self, machine, tm):
        a = machine.mvmalloc(1)
        b = machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, a, 1)
        tm.write(t2, b, 2)
        assert t1.doomed is None and t2.doomed is None

    def test_line_granularity_false_sharing(self, machine, tm):
        # two words on the same line conflict (section 6.1: line-granular)
        base = machine.mvmalloc(8)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, base, 1)
        tm.write(t2, base + 1, 2)
        assert t1.doomed is AbortCause.WRITE_WRITE

    def test_repeated_access_single_broadcast(self, machine, tm):
        addr = machine.mvmalloc(1)
        t1 = begin(tm, 0)
        tm.read(t1, addr)
        first_again = tm.read(t1, addr)[1]
        # warm repeat costs at most an L1 hit + no broadcast
        assert first_again <= machine.config.machine.l1d.latency_cycles


class TestVersioning:
    def test_reads_own_writes(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 9)
        assert tm.read(txn, addr)[0] == 9

    def test_lazy_writes_invisible_until_commit(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 9)
        assert machine.plain_load(addr) == 0
        tm.commit(txn, 0)
        assert machine.plain_load(addr) == 9

    def test_abort_discards_buffer(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.write(txn, addr, 9)
        tm.abort(txn, AbortCause.READ_WRITE)
        assert machine.plain_load(addr) == 0

    def test_doomed_commit_raises(self, machine, tm):
        addr = machine.mvmalloc(1)
        victim = begin(tm, 0)
        tm.write(victim, addr, 1)
        aggressor = begin(tm, 1)
        tm.read(aggressor, addr)
        with pytest.raises(TransactionAborted):
            tm.commit(victim, 0)


class TestCommitToken:
    def test_read_only_commit_skips_token(self, machine, tm):
        addr = machine.mvmalloc(1)
        txn = begin(tm, 0)
        tm.read(txn, addr)
        cycles = tm.commit(txn, 0)
        assert cycles == machine.config.txn_overhead_cycles

    def test_writer_commits_serialise(self, machine, tm):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, a, 1)
        tm.write(t2, b, 2)
        c1 = tm.commit(t1, 0)
        c2 = tm.commit(t2, 0)   # queued behind t1's token hold
        assert c2 > c1 - machine.config.txn_overhead_cycles
        assert tm.stats is None or True  # token wait tracked via stats


class TestVersionBufferBound:
    def test_overflow_aborts(self):
        config = SimConfig(tm=TMConfig(version_buffer_lines=2))
        machine = Machine(config)
        tm = TwoPhaseLockingTM(machine, SplitRandom(3))
        txn = begin(tm, 0)
        base = machine.mvmalloc(8 * 3)
        tm.write(txn, base, 1)
        tm.write(txn, base + 8, 1)
        with pytest.raises(TransactionAborted) as exc:
            tm.write(txn, base + 16, 1)
        assert exc.value.cause is AbortCause.VERSION_BUFFER_OVERFLOW

    def test_unbounded_by_default(self, machine, tm):
        txn = begin(tm, 0)
        base = machine.mvmalloc(8 * 40)
        for i in range(40):
            tm.write(txn, base + 8 * i, 1)
        assert txn.doomed is None
