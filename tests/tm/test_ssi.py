"""SSI-TM tests: dangerous-structure detection, read-only immunity."""

import pytest

from repro.common.errors import AbortCause, TransactionAborted
from repro.common.rng import SplitRandom
from repro.tm.ssi import SerializableSITM


@pytest.fixture
def tm(machine):
    return SerializableSITM(machine, SplitRandom(3))


def begin(tm, thread_id):
    txn, _ = tm.begin(thread_id, f"t{thread_id}", 0)
    return txn


class TestWriteSkewPrevention:
    def test_classic_write_skew_aborted(self, machine, tm):
        """The Listing 1 bank anomaly: disjoint writes, crossed reads."""
        checking = machine.mvmalloc(1)
        saving = machine.mvmalloc(1)
        machine.plain_store(checking, 60)
        machine.plain_store(saving, 60)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        # both verify the invariant over BOTH accounts...
        tm.read(t1, checking)
        tm.read(t1, saving)
        tm.read(t2, checking)
        tm.read(t2, saving)
        # ...then withdraw from different accounts (disjoint writes)
        tm.write(t1, checking, 60 - 100)
        tm.write(t2, saving, 60 - 100)
        tm.commit(t1, 0)
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(t2, 0)
        assert exc.value.cause is AbortCause.DANGEROUS_STRUCTURE

    def test_plain_rw_conflict_still_commits(self, machine, tm):
        """One-directional conflicts are not dangerous."""
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addr)
        tm.write(writer, addr + 8, 1)  # disjoint: no conflict at all
        tm.commit(writer, 0)
        tm.commit(reader, 0)

    def test_figure6_long_reader_commits(self, machine, tm):
        """Type-based dependencies: two same-direction edges, no abort."""
        addrs = [machine.mvmalloc(1) for _ in range(5)]
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.read(reader, addrs[0])
        tm.write(writer, addrs[0], 1)
        tm.write(writer, addrs[4], 1)
        tm.commit(writer, 0)
        for addr in addrs[1:]:
            tm.read(reader, addr)
        tm.commit(reader, 0)  # must not raise (SONTM aborts here)

    def test_committed_pivot_neighbour_aborts(self, machine, tm):
        """An edge completing a committed pivot aborts the edge's source."""
        a, b, c = (machine.mvmalloc(1) for _ in range(3))
        t1, t2, t3 = begin(tm, 0), begin(tm, 1), begin(tm, 2)
        # t2 is the pivot: in-edge from t1 (t1 reads a, t2 writes a),
        # out-edge to t3 (t2 reads b, t3 writes b)
        tm.read(t1, a)
        tm.write(t1, c, 1)
        tm.read(t2, b)
        tm.write(t2, a, 1)
        tm.write(t3, b, 1)
        tm.commit(t3, 0)          # t2 gains outbound when it commits
        tm.commit(t2, 0)          # commits with outbound only
        with pytest.raises(TransactionAborted) as exc:
            tm.commit(t1, 0)      # would complete t2 as a pivot
        assert exc.value.cause is AbortCause.DANGEROUS_STRUCTURE


class TestReadOnlyImmunity:
    def test_read_only_never_aborts(self, machine, tm):
        addr = machine.mvmalloc(1)
        reader = begin(tm, 0)
        tm.read(reader, addr)
        writer = begin(tm, 1)
        tm.write(writer, addr, 1)
        tm.commit(writer, 0)
        tm.commit(reader, 0)  # read-only: outbound edges are harmless

    def test_read_only_records_still_flag_writers(self, machine, tm):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)
        reader = begin(tm, 0)
        tm.read(reader, a)
        tm.commit(reader, 0)
        # a later concurrent... the reader is committed; a writer that
        # started before the reader committed gains an inbound edge
        # (the reader record is concurrent with it)
        writer = begin(tm, 1)
        tm.write(writer, a, 1)
        tm.commit(writer, 0)  # inbound only: fine
        assert True


class TestWindowHygiene:
    def test_window_prunes_when_no_overlap_possible(self, machine, tm):
        addr = machine.mvmalloc(1)
        for i in range(5):
            txn = begin(tm, 0)
            tm.write(txn, addr, i)
            tm.commit(txn, 0)
        # no active transactions: next commit prunes everything prior
        txn = begin(tm, 0)
        tm.write(txn, addr, 9)
        tm.commit(txn, 0)
        assert len(tm._window) <= 2

    def test_window_retains_overlapping_records(self, machine, tm):
        addr = machine.mvmalloc(1)
        pin = begin(tm, 5)   # long-running: keeps records alive
        for i in range(4):
            txn = begin(tm, 0)
            tm.write(txn, addr + 8 * i, i)
            tm.commit(txn, 0)
        assert len(tm._window) == 4
        tm.commit(pin, 0)


class TestStillSnapshotIsolation:
    def test_ww_conflict_still_aborts(self, machine, tm):
        addr = machine.mvmalloc(1)
        t1, t2 = begin(tm, 0), begin(tm, 1)
        tm.write(t1, addr, 1)
        tm.write(t2, addr, 2)
        tm.commit(t1, 0)
        with pytest.raises(TransactionAborted):
            tm.commit(t2, 0)

    def test_snapshot_reads_preserved(self, machine, tm):
        addr = machine.mvmalloc(1)
        machine.plain_store(addr, 5)
        reader = begin(tm, 0)
        writer = begin(tm, 1)
        tm.write(writer, addr, 9)
        tm.commit(writer, 0)
        assert tm.read(reader, addr)[0] == 5
