"""Operation-descriptor tests."""

from repro.tm.ops import Abort, Compute, Op, Read, Write


class TestRead:
    def test_defaults(self):
        op = Read(0x40)
        assert op.addr == 0x40
        assert op.promote is False
        assert op.site == ""

    def test_promote_flag(self):
        assert Read(1, promote=True).promote is True

    def test_repr_shows_promotion(self):
        assert "promote" in repr(Read(1, promote=True))
        assert "promote" not in repr(Read(1))

    def test_is_op(self):
        assert isinstance(Read(1), Op)


class TestWrite:
    def test_fields(self):
        op = Write(0x40, 7, site="s")
        assert (op.addr, op.value, op.site) == (0x40, 7, "s")

    def test_repr(self):
        assert "0x40" in repr(Write(0x40, 7))


class TestCompute:
    def test_default_one_cycle(self):
        assert Compute().cycles == 1

    def test_repr(self):
        assert "5" in repr(Compute(5))


class TestAbort:
    def test_repr(self):
        assert repr(Abort()) == "Abort()"

    def test_slots_no_dict(self):
        # descriptors are allocated per operation: keep them lean
        for op in (Read(1), Write(1, 2), Compute(), Abort()):
            assert not hasattr(op, "__dict__")
