"""Figures 2 and 6: the paper's example schedules, via the harness."""

from repro.harness.experiments import figure2, figure6


class TestFigure2:
    """2PL aborts three, CS aborts TX2+TX3, SI aborts only TX3."""

    def _by_system(self):
        return {o.system: o for o in figure2()}

    def test_2pl_aborts_everything_conflicting(self):
        out = self._by_system()["2PL"]
        assert sorted(out.aborted) == ["TX1", "TX2", "TX3"]
        assert out.committed == ["TX0"]

    def test_cs_commits_tx0_tx1(self):
        out = self._by_system()["SONTM"]
        assert sorted(out.committed) == ["TX0", "TX1"]
        assert sorted(out.aborted) == ["TX2", "TX3"]

    def test_si_aborts_only_tx3(self):
        out = self._by_system()["SI-TM"]
        assert sorted(out.committed) == ["TX0", "TX1", "TX2"]
        assert out.aborted == ["TX3"]

    def test_si_abort_is_write_write(self):
        out = self._by_system()["SI-TM"]
        assert out.abort_causes["TX3"] == "write-write"

    def test_monotone_improvement(self):
        by_system = self._by_system()
        assert len(by_system["2PL"].aborted) \
            > len(by_system["SONTM"].aborted) \
            > len(by_system["SI-TM"].aborted)


class TestFigure6:
    """Temporal (CS) vs type-based (SSI) dependency cycles."""

    def _by_system(self):
        return {o.system: o for o in figure6()}

    def test_cs_aborts_long_reader(self):
        out = self._by_system()["SONTM"]
        assert "TX0" in out.aborted
        assert "TX1" in out.committed

    def test_si_commits_both(self):
        out = self._by_system()["SI-TM"]
        assert sorted(out.committed) == ["TX0", "TX1"]

    def test_ssi_commits_both(self):
        # two same-direction rw edges are not a dangerous structure
        out = self._by_system()["SSI-TM"]
        assert sorted(out.committed) == ["TX0", "TX1"]
        assert not out.aborted
