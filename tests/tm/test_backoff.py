"""Exponential-backoff policy tests."""

from repro.common.config import TMConfig
from repro.common.rng import SplitRandom
from repro.tm.backoff import ExponentialBackoff, NoBackoff


class TestExponentialBackoff:
    def _policy(self, **kwargs):
        return ExponentialBackoff(TMConfig(**kwargs), SplitRandom(9))

    def test_no_delay_before_first_abort(self):
        assert self._policy().delay(0) == 0

    def test_delay_bounded_by_window(self):
        policy = self._policy(backoff_base_cycles=64)
        for attempt in range(1, 10):
            ceiling = 64 * (1 << attempt)
            for _ in range(20):
                assert 0 <= policy.delay(attempt) < ceiling

    def test_exponent_capped(self):
        policy = self._policy(backoff_base_cycles=2, backoff_max_exponent=3)
        ceiling = 2 * (1 << 3)
        assert all(policy.delay(50) < ceiling for _ in range(100))

    def test_disabled_returns_zero(self):
        policy = ExponentialBackoff(TMConfig(backoff_enabled=False),
                                    SplitRandom(9))
        assert policy.delay(5) == 0

    def test_windows_grow_on_average(self):
        policy = self._policy()
        early = sum(policy.delay(1) for _ in range(300)) / 300
        late = sum(policy.delay(8) for _ in range(300)) / 300
        assert late > early * 10


class TestNoBackoff:
    def test_always_zero(self):
        policy = NoBackoff()
        assert policy.delay(0) == 0
        assert policy.delay(100) == 0
