"""Timestamp-counter overflow handling end to end (section 4.1).

On overflow, all active transactions abort with TIMESTAMP_OVERFLOW, an
"interrupt" drains the system, the newest committed versions survive as
fresh base versions, the counter restarts, and execution continues —
with no lost committed data.
"""

import pytest

from repro.common.config import MVMConfig, SimConfig
from repro.common.errors import AbortCause
from repro.sim.machine import Machine
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def tiny_clock_machine(max_timestamp=60):
    return Machine(SimConfig(mvm=MVMConfig(max_timestamp=max_timestamp,
                                           commit_delta=8)))


class TestOverflowRecovery:
    def test_program_completes_across_overflows(self):
        machine = tiny_clock_machine()
        addr = machine.mvmalloc(1)

        def increment():
            value = yield Read(addr)
            yield Compute(2)
            yield Write(addr, value + 1)

        # far more transactions than the 60-timestamp budget allows
        programs = [[spec(increment, "inc") for _ in range(40)]
                    for _ in range(2)]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_commits == 80
        assert machine.plain_load(addr) == 80

    def test_overflow_aborts_recorded(self):
        machine = tiny_clock_machine()
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def busy(target):
            def body():
                value = yield Read(target)
                yield Compute(30)
                yield Write(target, value + 1)
            return body

        programs = [[spec(busy(a), "a") for _ in range(30)],
                    [spec(busy(b), "b") for _ in range(30)]]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_commits == 60
        assert stats.aborts_by(AbortCause.TIMESTAMP_OVERFLOW) > 0

    def test_committed_data_survives_reset(self):
        machine = tiny_clock_machine(max_timestamp=40)
        base = machine.mvmalloc(8 * 10)

        def write_cell(i):
            def body():
                yield Write(base + i * 8, i + 100)
            return body

        programs = [[spec(write_cell(i), "w") for i in range(30)]]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_commits == 30
        for i in range(30):
            assert machine.plain_load(base + i * 8) == i + 100

    def test_overflow_counter_increments(self):
        from repro.common.rng import SplitRandom
        from repro.sim.engine import Engine
        from repro.tm import SnapshotIsolationTM

        machine = tiny_clock_machine(max_timestamp=30)
        addr = machine.mvmalloc(1)

        def touch():
            value = yield Read(addr)
            yield Write(addr, value + 1)

        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        engine = Engine(tm, [[spec(touch, "t") for _ in range(40)]])
        engine.run()
        assert tm.timestamp_overflows >= 1
        assert machine.clock.now <= 30
