"""TM API plumbing tests: Txn bookkeeping, CommitToken, plain access."""

import pytest

from repro.common.errors import AbortCause, TMError
from repro.common.rng import SplitRandom
from repro.tm.api import CommitToken, Txn
from repro.tm.twopl import TwoPhaseLockingTM


class TestTxn:
    def test_fresh_state(self):
        txn = Txn(thread_id=3, label="x", attempt=0)
        assert txn.is_read_only
        assert txn.doomed is None
        assert txn.active
        assert txn.validation_lines() == set()

    def test_writes_clear_read_only(self):
        txn = Txn(0, "x", 0)
        txn.write_lines.add(5)
        assert not txn.is_read_only

    def test_promotion_clears_read_only(self):
        txn = Txn(0, "x", 0)
        txn.promoted_lines.add(5)
        assert not txn.is_read_only

    def test_validation_lines_union(self):
        txn = Txn(0, "x", 0)
        txn.write_lines.add(1)
        txn.promoted_lines.add(2)
        assert txn.validation_lines() == {1, 2}

    def test_doom_first_cause_sticks(self):
        txn = Txn(0, "x", 0)
        txn.doom(AbortCause.READ_WRITE)
        txn.doom(AbortCause.WRITE_WRITE)
        assert txn.doomed is AbortCause.READ_WRITE


class TestCommitToken:
    def test_uncontended_no_wait(self):
        token = CommitToken()
        assert token.acquire(now=100, hold_cycles=50) == 0

    def test_queued_behind_holder(self):
        token = CommitToken()
        token.acquire(now=100, hold_cycles=50)   # busy until 150
        assert token.acquire(now=120, hold_cycles=10) == 30

    def test_free_after_release_time(self):
        token = CommitToken()
        token.acquire(now=100, hold_cycles=50)
        assert token.acquire(now=200, hold_cycles=10) == 0

    def test_fifo_accumulation(self):
        token = CommitToken()
        token.acquire(now=0, hold_cycles=100)
        w1 = token.acquire(now=0, hold_cycles=100)
        w2 = token.acquire(now=0, hold_cycles=100)
        assert (w1, w2) == (100, 200)


class TestSystemPlumbing:
    def test_double_begin_same_thread_rejected(self, machine):
        tm = TwoPhaseLockingTM(machine, SplitRandom(1))
        tm.begin(0, "a", 0)
        with pytest.raises(TMError):
            tm.begin(0, "b", 0)

    def test_plain_access_with_timing(self, machine):
        tm = TwoPhaseLockingTM(machine, SplitRandom(1))
        addr = machine.mvmalloc(1)
        cycles_w = tm.plain_write(0, addr, 7)
        value, cycles_r = tm.plain_read(0, addr)
        assert value == 7
        assert cycles_w >= machine.config.machine.l1d.latency_cycles
        assert cycles_r == machine.config.machine.l1d.latency_cycles

    def test_others_excludes_self_and_dead(self, machine):
        tm = TwoPhaseLockingTM(machine, SplitRandom(1))
        t0, _ = tm.begin(0, "a", 0)
        t1, _ = tm.begin(1, "b", 0)
        assert list(tm.others(t0)) == [t1]
        tm.abort(t1, AbortCause.EXPLICIT)
        assert list(tm.others(t0)) == []
