"""Exporter tests: JSONL span logs, schema validation, Chrome traces."""

import json

from repro.obs import (SPAN_SCHEMA_VERSION, Span, chrome_trace,
                       chrome_trace_events, load_spans_jsonl,
                       spans_to_jsonl, validate_span_log,
                       write_chrome_trace)


def _spans():
    return [
        Span(uid=0, thread_id=0, label="insert", begin_cycle=10,
             end_cycle=50, outcome="commit", reads=2, writes=1,
             start_ts=1, commit_ts=4),
        Span(uid=1, thread_id=1, label="insert", begin_cycle=12,
             end_cycle=40, outcome="abort", cause="write-write",
             retries=1, reads=1, writes=1, start_ts=2),
    ]


class TestJsonl:
    def test_round_trip(self):
        spans = _spans()
        assert load_spans_jsonl(spans_to_jsonl(spans)) == spans

    def test_extra_stamped_on_every_line(self):
        text = spans_to_jsonl(_spans(), extra={"system": "SI-TM"})
        rows = [json.loads(line) for line in text.splitlines()]
        assert all(row["system"] == "SI-TM" for row in rows)

    def test_extra_ignored_on_load(self):
        text = spans_to_jsonl(_spans(), extra={"system": "SI-TM"})
        assert load_spans_jsonl(text) == _spans()

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
        assert load_spans_jsonl("") == []


class TestValidateSpanLog:
    def _line(self, **overrides):
        row = {"schema_version": SPAN_SCHEMA_VERSION, "uid": 0,
               "thread": 0, "label": "t", "begin_cycle": 10,
               "end_cycle": 20, "outcome": "commit"}
        row.update(overrides)
        return json.dumps({k: v for k, v in row.items()
                           if v is not ...})

    def test_current_export_is_valid(self):
        spans = _spans()
        spans.append(Span(uid=2, thread_id=0, label="t", begin_cycle=60,
                          end_cycle=90, outcome="abort",
                          cause="write-write", killer_tid=1, killer_uid=1,
                          killer_label="insert", killer_ts=2))
        assert validate_span_log(spans_to_jsonl(spans)) == []

    def test_version_1_logs_without_schema_version_still_validate(self):
        # the pre-provenance shape: no schema_version, no killer keys
        legacy = json.dumps({"uid": 0, "thread": 1, "label": "x",
                             "begin_cycle": 5, "end_cycle": 9,
                             "outcome": "abort", "cause": "read-write",
                             "retries": 0, "reads": 1, "writes": 0,
                             "start_ts": 1, "commit_ts": None,
                             "conflict_line": 3})
        assert validate_span_log(legacy + "\n") == []

    def test_extra_keys_tolerated(self):
        text = spans_to_jsonl(_spans(), extra={"system": "SI-TM",
                                               "schedule": "repro-1"})
        assert validate_span_log(text) == []

    def test_blank_lines_skipped(self):
        assert validate_span_log("\n\n" + self._line() + "\n\n") == []

    def test_missing_required_key(self):
        (problem,) = validate_span_log(self._line(uid=...))
        assert "missing 'uid'" in problem

    def test_wrong_type_flagged(self):
        (problem,) = validate_span_log(self._line(begin_cycle="10"))
        assert "'begin_cycle'" in problem and "int" in problem

    def test_bool_is_not_an_int(self):
        (problem,) = validate_span_log(self._line(uid=True))
        assert "'uid'" in problem

    def test_unknown_outcome(self):
        (problem,) = validate_span_log(self._line(outcome="exploded"))
        assert "unknown outcome" in problem

    def test_unsupported_schema_version(self):
        (problem,) = validate_span_log(
            self._line(schema_version=SPAN_SCHEMA_VERSION + 1))
        assert "unsupported schema_version" in problem

    def test_killer_fields_only_on_aborts(self):
        (problem,) = validate_span_log(
            self._line(outcome="commit", killer_uid=3, killer_tid=1))
        assert "killer fields on a non-abort span" in problem
        assert validate_span_log(
            self._line(outcome="abort", cause="write-write",
                       killer_uid=3, killer_tid=1)) == []

    def test_non_json_line_located(self):
        text = self._line() + "\nnot json at all\n"
        (problem,) = validate_span_log(text)
        assert problem.startswith("line 2: not JSON")

    def test_non_object_line(self):
        (problem,) = validate_span_log("[1, 2]\n")
        assert "not an object" in problem

    def test_problems_accumulate_across_lines(self):
        text = self._line(uid=...) + "\n" + self._line(outcome="bogus")
        problems = validate_span_log(text)
        assert len(problems) == 2


class TestChromeTrace:
    def test_events_have_required_fields(self):
        for event in chrome_trace_events(_spans(), pid=3, process_name="x"):
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["pid"] == 3

    def test_metadata_tracks(self):
        events = chrome_trace_events(_spans(), process_name="run0")
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        thread_tracks = [e for e in meta if e["name"] == "thread_name"]
        assert {e["tid"] for e in thread_tracks} == {0, 1}

    def test_slices_encode_outcome(self):
        events = chrome_trace_events(_spans())
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2
        committed, aborted = slices
        assert committed["cat"] == "commit"
        assert committed["dur"] == 40
        assert aborted["cat"] == "abort"
        assert "write-write" in aborted["name"]
        assert aborted["args"]["retries"] == 1

    def test_document_one_pid_per_run(self):
        doc = chrome_trace([("run0", _spans()), ("run1", _spans())])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}
        assert doc["displayTimeUnit"] == "ms"

    def test_write_is_deterministic(self, tmp_path):
        doc = chrome_trace([("run0", _spans())])
        a = write_chrome_trace(tmp_path / "a.json", doc)
        b = write_chrome_trace(tmp_path / "b" / "b.json", doc)
        assert a.read_text() == b.read_text()
        assert json.loads(a.read_text())["traceEvents"]
