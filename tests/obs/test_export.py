"""Exporter tests: JSONL span logs and Chrome trace documents."""

import json

from repro.obs import (Span, chrome_trace, chrome_trace_events,
                       load_spans_jsonl, spans_to_jsonl, write_chrome_trace)


def _spans():
    return [
        Span(uid=0, thread_id=0, label="insert", begin_cycle=10,
             end_cycle=50, outcome="commit", reads=2, writes=1,
             start_ts=1, commit_ts=4),
        Span(uid=1, thread_id=1, label="insert", begin_cycle=12,
             end_cycle=40, outcome="abort", cause="write-write",
             retries=1, reads=1, writes=1, start_ts=2),
    ]


class TestJsonl:
    def test_round_trip(self):
        spans = _spans()
        assert load_spans_jsonl(spans_to_jsonl(spans)) == spans

    def test_extra_stamped_on_every_line(self):
        text = spans_to_jsonl(_spans(), extra={"system": "SI-TM"})
        rows = [json.loads(line) for line in text.splitlines()]
        assert all(row["system"] == "SI-TM" for row in rows)

    def test_extra_ignored_on_load(self):
        text = spans_to_jsonl(_spans(), extra={"system": "SI-TM"})
        assert load_spans_jsonl(text) == _spans()

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
        assert load_spans_jsonl("") == []


class TestChromeTrace:
    def test_events_have_required_fields(self):
        for event in chrome_trace_events(_spans(), pid=3, process_name="x"):
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["pid"] == 3

    def test_metadata_tracks(self):
        events = chrome_trace_events(_spans(), process_name="run0")
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        thread_tracks = [e for e in meta if e["name"] == "thread_name"]
        assert {e["tid"] for e in thread_tracks} == {0, 1}

    def test_slices_encode_outcome(self):
        events = chrome_trace_events(_spans())
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2
        committed, aborted = slices
        assert committed["cat"] == "commit"
        assert committed["dur"] == 40
        assert aborted["cat"] == "abort"
        assert "write-write" in aborted["name"]
        assert aborted["args"]["retries"] == 1

    def test_document_one_pid_per_run(self):
        doc = chrome_trace([("run0", _spans()), ("run1", _spans())])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}
        assert doc["displayTimeUnit"] == "ms"

    def test_write_is_deterministic(self, tmp_path):
        doc = chrome_trace([("run0", _spans())])
        a = write_chrome_trace(tmp_path / "a.json", doc)
        b = write_chrome_trace(tmp_path / "b" / "b.json", doc)
        assert a.read_text() == b.read_text()
        assert json.loads(a.read_text())["traceEvents"]
