"""Prometheus exposition: grammar, determinism, and the golden pin.

The golden file (``tests/obs/golden/metrics.prom``) freezes the exact
byte-for-byte rendering of a representative snapshot — names
sanitised, labels sorted and escaped, histogram buckets cumulative —
so any drift in the exposition format is a reviewed diff, not an
accident a scraper discovers in production.
"""

import pathlib
import re

from repro.harness.runner import run_once
from repro.obs.prom import prometheus_exposition

GOLDEN = pathlib.Path(__file__).parent / "golden" / "metrics.prom"

#: a representative snapshot exercising every formatting rule: bare
#: and labelled counters, float gauges, name sanitisation (the dash in
#: SI-TM), label escaping (quote and backslash), multi-bucket and
#: empty histograms, label sets differing within one family
SNAPSHOT = {
    "counters": {
        "txn_commits_total{system=SI-TM}": 160,
        "txn_aborts_total{cause=WW-CONFLICT,system=SI-TM}": 5,
        "txn_aborts_total{cause=VALIDATION,system=SI-TM}": 2,
        "obs_alerts_total{rule=AbortSpike}": 1,
        "steps_total": 12345,
    },
    "gauges": {
        "clock_now": 98765,
        "mvm_occupancy_ratio": 0.375,
        'weird_label{note=say "hi"\\now}': 1,
    },
    "histograms": {
        "span_cycles{system=SI-TM}": {
            "buckets": {"64": 3, "128": 10, "1024": 2},
            "count": 15, "sum": 2211, "min": 40, "max": 900,
        },
        "9starts_with_digit": {
            "buckets": {}, "count": 0, "sum": 0,
            "min": None, "max": None,
        },
    },
}


class TestGolden:
    def test_exposition_matches_golden_file(self):
        assert prometheus_exposition(SNAPSHOT) == GOLDEN.read_text()

    def test_rendering_is_deterministic(self):
        first = prometheus_exposition(SNAPSHOT)
        reordered = {section: dict(reversed(list(items.items())))
                     for section, items in SNAPSHOT.items()}
        assert prometheus_exposition(reordered) == first


class TestFormat:
    def test_type_line_per_family(self):
        text = prometheus_exposition(SNAPSHOT)
        assert "# TYPE sitm_txn_commits_total counter" in text
        assert "# TYPE sitm_clock_now gauge" in text
        assert "# TYPE sitm_span_cycles histogram" in text
        # one TYPE line per family, even with several label sets
        assert text.count("# TYPE sitm_txn_aborts_total") == 1

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_exposition(SNAPSHOT)
        assert 'sitm_span_cycles_bucket{le="64",system="SI-TM"} 3' \
            in text
        assert 'sitm_span_cycles_bucket{le="128",system="SI-TM"} 13' \
            in text
        assert 'sitm_span_cycles_bucket{le="1024",system="SI-TM"} 15' \
            in text
        assert 'sitm_span_cycles_bucket{le="+Inf",system="SI-TM"} 15' \
            in text
        assert 'sitm_span_cycles_count{system="SI-TM"} 15' in text

    def test_names_are_sanitised(self):
        text = prometheus_exposition(SNAPSHOT)
        assert "sitm__9starts_with_digit" in text
        name_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            assert name_re.match(name), line

    def test_label_values_are_escaped(self):
        text = prometheus_exposition(SNAPSHOT)
        assert r'note="say \"hi\"\\now"' in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_exposition({}) == ""
        assert prometheus_exposition(
            {"counters": {}, "gauges": {}, "histograms": {}}) == ""


class TestLiveSnapshot:
    def test_real_run_exposition_is_stable_and_parseable(self):
        """Two identical runs must scrape byte-identically."""
        results = [run_once("rbtree", "SI-TM", 4, seed=1,
                            profile="test", telemetry=True)
                   for _ in range(2)]
        first, second = (prometheus_exposition(r.metrics)
                         for r in results)
        assert first == second
        assert "# TYPE sitm_txn_commits_total counter" in first
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$')
        for line in first.splitlines():
            if not line.startswith("#"):
                assert sample_re.match(line), line
