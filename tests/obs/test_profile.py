"""Cycle-attribution profiler: conservation, composition, heatmaps.

The load-bearing contract is cycle conservation — per-thread phase
totals sum *exactly* to the engine's final thread clocks for every
backend — plus the telemetry promise the rest of ``repro.obs`` makes:
profiling a run never perturbs it, alone or composed with the span
recorder in a :class:`~repro.obs.spans.MultiTracer`, as witnessed by
the oracle's recorded history staying byte-identical.
"""

import dataclasses
import json

import pytest

from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.common.rng import SplitRandom, derive_seed
from repro.harness.runner import run_once
from repro.obs import (CycleProfiler, MultiTracer, Span, SpanRecorder,
                       collapsed_stacks, conflict_heatmap, phase_shares,
                       phase_table)
from repro.obs.profile import PHASES, SUB_PHASES
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.tm import SYSTEMS
from repro.workloads import REGISTRY

SPEC = dict(workload="rbtree", system="SI-TM", threads=4, seed=1,
            profile="test")


def _run_engine(system, tracer=None, workload="rbtree", threads=4, seed=5):
    """Drive one workload run directly through the engine."""
    config = SimConfig()
    if threads > config.machine.cores:
        config = config.replace(
            machine=dataclasses.replace(config.machine, cores=threads))
    machine = Machine(config)
    rng = SplitRandom(derive_seed(seed, "profile-test", workload, system))
    bench = REGISTRY.create(workload, profile="test")
    instance = bench.setup(machine, threads, rng.split("workload"))
    tm = SYSTEMS[system](machine, rng.split("tm"))
    engine = Engine(tm, instance.programs, tracer=tracer)
    return engine.run()


class TestConservation:
    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_phase_cycles_sum_to_thread_clocks(self, system):
        """The invariant, checked for every backend: no cycle is lost
        or invented, and no sub-phase group exceeds its parent."""
        profiler = CycleProfiler()
        stats = _run_engine(system, tracer=profiler)
        clocks = [t.cycles for t in stats.threads]
        profiler.check_conservation(clocks)  # raises on violation
        assert profiler.total_cycles() == sum(clocks)
        assert stats.total_commits > 0

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_only_known_phases_charged(self, system):
        profiler = CycleProfiler()
        _run_engine(system, tracer=profiler)
        snapshot = profiler.snapshot()
        for phases in snapshot["threads"].values():
            assert set(phases) <= set(PHASES)
            for phase, entry in phases.items():
                assert set(entry["sub"]) <= set(SUB_PHASES.get(phase, ()))

    def test_check_conservation_rejects_lost_cycles(self):
        profiler = CycleProfiler()
        profiler.account(0, "read", 10)
        with pytest.raises(SimulationError, match="conservation"):
            profiler.check_conservation([11])

    def test_check_conservation_rejects_sub_phase_overflow(self):
        profiler = CycleProfiler()
        profiler.account(0, "commit", 10)
        profiler.sub_account(0, "commit", "install", 12)
        with pytest.raises(SimulationError, match="overflow"):
            profiler.check_conservation([10])

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_wasted_cycles_reconcile_with_span_ledger(self, system):
        """Double-entry bookkeeping across observers: the profiler's
        per-thread wasted-cycle tally (clock at abort minus clock at
        begin) must equal the span ledger's per-victim-thread sum of
        abort-span durations, exactly, for every backend.  The harness
        enforces this via ``check_conservation(wasted_by_thread=...)``
        on every telemetry+profiling run — which is what this exercises
        end-to-end."""
        result = run_once(workload="list", system=system, threads=4,
                          seed=2, profile="test", telemetry=True,
                          profiling=True)
        by_thread = {}
        for row in result.spans:
            if row.get("outcome") == "abort":
                by_thread[row["thread"]] = (
                    by_thread.get(row["thread"], 0)
                    + row["end_cycle"] - row["begin_cycle"])
        assert by_thread, f"{system}: contended run should abort"
        snapshot = result.phases
        assert snapshot["version"] == 2
        wasted = {int(tid): cycles
                  for tid, cycles in snapshot["wasted_cycles"].items()}
        assert wasted == by_thread

    def test_check_conservation_rejects_wasted_overflow(self):
        profiler = CycleProfiler()
        profiler.account(0, "read", 10)
        profiler._wasted[0] = 11  # more waste than the thread ran
        with pytest.raises(SimulationError, match="wasted-cycle"):
            profiler.check_conservation([10])

    def test_check_conservation_rejects_ledger_mismatch(self):
        profiler = CycleProfiler()
        profiler.account(0, "read", 10)
        profiler._wasted[0] = 4
        with pytest.raises(SimulationError, match="reconciliation"):
            profiler.check_conservation([10], wasted_by_thread={0: 5})
        profiler.check_conservation([10], wasted_by_thread={0: 4})

    def test_backend_specific_sub_phases_observed(self):
        """Each instrumented layer's attribution actually fires: SI-TM
        installs, LogTM undo walks, 2PL backoff."""
        expected = {"SI-TM": ("commit", "install"),
                    "LogTM": ("abort", "undo"),
                    "2PL": ("abort", "backoff")}
        for system, (parent, sub) in expected.items():
            profiler = CycleProfiler()
            _run_engine(system, tracer=profiler, workload="list",
                        threads=4, seed=2)
            snapshot = profiler.snapshot()
            seen = {s
                    for phases in snapshot["threads"].values()
                    for phase, entry in phases.items() if phase == parent
                    for s in entry["sub"]}
            assert sub in seen, (system, snapshot)


class TestNonPerturbation:
    def test_profiling_does_not_perturb_the_simulation(self):
        bare = run_once(**SPEC)
        profiled = run_once(**SPEC, profiling=True)
        assert (bare.commits, bare.aborts, bare.makespan_cycles) == (
            profiled.commits, profiled.aborts, profiled.makespan_cycles)
        assert bare.phases is None and profiled.phases is not None

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_fuzz_history_identical_under_profiler(self, system):
        """The oracle's witness: composing the profiler (via
        MultiTracer) into a fuzz run leaves the recorded history and
        final memory byte-identical."""
        from repro.oracle.fuzz import generate_schedule, run_schedule
        schedule = generate_schedule(0, 3)
        plain_history, plain_final = run_schedule(schedule, system)
        profiler = CycleProfiler()
        traced_history, traced_final = run_schedule(schedule, system,
                                                    tracer=profiler)
        assert traced_final == plain_final
        assert traced_history.to_dict() == plain_history.to_dict()
        assert profiler.total_cycles() > 0

    def test_spans_identical_with_and_without_profiler(self):
        solo = run_once(**SPEC, telemetry=True)
        both = run_once(**SPEC, telemetry=True, profiling=True)
        assert solo.spans == both.spans
        assert solo.metrics == both.metrics


class TestMultiTracerComposition:
    def test_children_called_in_construction_order(self):
        calls = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def on_abort(self, txn, cause):
                calls.append(self.name)

        MultiTracer(Probe("first"), Probe("second")).on_abort(None, None)
        assert calls == ["first", "second"]

    def test_recorder_and_profiler_agree_on_conflicts(self):
        """Composed SpanRecorder + CycleProfiler see the same aborts:
        span conflict_lines and the profiler's heatmap match."""
        recorder = SpanRecorder()
        profiler = CycleProfiler()
        _run_engine("SI-TM", tracer=MultiTracer(recorder, profiler),
                    workload="list", threads=4, seed=2)
        span_lines = [s.conflict_line for s in recorder.spans
                      if s.outcome == "abort"
                      and s.conflict_line is not None]
        heatmap = profiler.snapshot()["conflict_lines"]
        assert sum(count for causes in heatmap.values()
                   for count in causes.values()) == len(span_lines)
        for line in span_lines:
            assert str(line) in heatmap


class TestSnapshotAndExports:
    def _snapshot(self):
        return run_once(**SPEC, profiling=True).phases

    def test_snapshot_json_round_trips_byte_identically(self):
        snapshot = self._snapshot()
        encoded = json.dumps(snapshot, sort_keys=True)
        assert json.dumps(json.loads(encoded), sort_keys=True) == encoded
        again = run_once(**SPEC, profiling=True).phases
        assert json.dumps(again, sort_keys=True) == encoded

    def test_phase_shares_sum_to_one(self):
        shares = phase_shares(self._snapshot())
        assert shares and abs(sum(shares.values()) - 1.0) < 1e-9
        assert phase_shares({"threads": {}}) == {}

    def test_collapsed_stacks_conserve_cycles(self):
        snapshot = self._snapshot()
        stacks = collapsed_stacks(snapshot, root="run")
        total = 0
        for line in stacks.splitlines():
            stack, cycles = line.rsplit(" ", 1)
            assert stack.startswith("run;")
            total += int(cycles)
        grand = sum(entry["cycles"]
                    for phases in snapshot["threads"].values()
                    for entry in phases.values())
        assert total == grand

    def test_collapsed_stacks_per_thread_frames(self):
        stacks = collapsed_stacks(self._snapshot(), per_thread=True)
        assert ";thread-0;" in stacks

    def test_phase_table_reports_conserved_total(self):
        snapshot = self._snapshot()
        table = phase_table(snapshot)
        grand = sum(entry["cycles"]
                    for phases in snapshot["threads"].values()
                    for entry in phases.values())
        assert f"total charged cycles: {grand}" in table
        assert "commit" in table


class TestConflictHeatmap:
    def test_heatmap_ranks_aborting_lines(self):
        result = run_once(workload="list", system="SI-TM", threads=4,
                          seed=2, profile="test", telemetry=True,
                          profiling=True)
        spans = [Span.from_dict(row) for row in result.spans]
        report = conflict_heatmap(spans, result.phases)
        assert "Conflict heatmap" in report
        aborted = [s for s in spans if s.outcome == "abort"
                   and s.conflict_line is not None]
        if aborted:
            hottest = max(aborted,
                          key=lambda s: s.end_cycle - s.begin_cycle)
            assert f"0x{hottest.conflict_line:x}" in report

    def test_heatmap_on_clean_run(self):
        result = run_once(workload="array", system="SI-TM", threads=1,
                          seed=1, profile="test", telemetry=True,
                          profiling=True)
        spans = [Span.from_dict(row) for row in result.spans]
        assert "no aborts observed" in conflict_heatmap(
            spans, result.phases)


class TestHarnessIntegration:
    def test_profiling_spec_distinct_cache_key(self):
        from repro.harness.spec import ExperimentSpec
        plain = ExperimentSpec(**SPEC)
        profiled = ExperimentSpec(**SPEC, profiling=True)
        assert "profiling" not in plain.to_dict()
        assert plain.spec_hash() != profiled.spec_hash()
        clone = ExperimentSpec.from_dict(profiled.to_dict())
        assert clone.profiling and clone == profiled
        assert str(profiled).endswith("/profiling")

    def test_phases_survive_cache_and_process_boundary(self):
        from repro.harness.executor import Executor
        from repro.harness.spec import ExperimentSpec
        spec = ExperimentSpec(**SPEC, profiling=True)
        cold = Executor(jobs=2, cache=True).run([spec])[spec]
        warm_executor = Executor(jobs=1, cache=True)
        warm = warm_executor.run([spec])[spec]
        assert warm_executor.counters()["cache_hits"] == 1
        assert cold.phases is not None
        assert (json.dumps(cold.phases, sort_keys=True)
                == json.dumps(warm.phases, sort_keys=True))
