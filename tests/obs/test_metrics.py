"""MetricsRegistry tests: keys, buckets, canonical snapshots."""

import json

from repro.obs.metrics import MetricsRegistry, _bucket_bound, metric_key


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("txn_commits", {}) == "txn_commits"

    def test_labels_sorted(self):
        key = metric_key("aborts", {"system": "SI-TM", "cause": "ww"})
        assert key == "aborts{cause=ww,system=SI-TM}"

    def test_label_order_irrelevant(self):
        a = metric_key("m", {"x": 1, "y": 2})
        b = metric_key("m", {"y": 2, "x": 1})
        assert a == b


class TestBucketBound:
    def test_small_values(self):
        assert _bucket_bound(0) == 1
        assert _bucket_bound(1) == 1
        assert _bucket_bound(2) == 2

    def test_powers_of_two_are_their_own_bound(self):
        for exp in range(1, 12):
            assert _bucket_bound(1 << exp) == 1 << exp

    def test_rounding_up(self):
        assert _bucket_bound(3) == 4
        assert _bucket_bound(1000) == 1024


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("commits", 3, system="2PL")
        reg.inc("commits", 2, system="2PL")
        assert reg.counter("commits", system="2PL") == 5
        assert reg.counter("commits", system="SI-TM") == 0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("clock", 10.0)
        reg.set_gauge("clock", 20.0)
        assert reg.gauge("clock") == 20.0
        assert reg.gauge("missing") is None

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (1, 3, 3, 100):
            reg.observe("cycles", value)
        hist = reg.histogram("cycles")
        assert hist["count"] == 4
        assert hist["sum"] == 107
        assert hist["min"] == 1 and hist["max"] == 100
        assert hist["buckets"] == {"1": 1, "4": 2, "128": 1}

    def test_len_counts_instruments(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.inc("a")
        reg.set_gauge("b", 1.0)
        reg.observe("c", 1)
        assert len(reg) == 3


class TestSnapshot:
    def test_sorted_at_every_level(self):
        reg = MetricsRegistry()
        reg.inc("zeta")
        reg.inc("alpha")
        reg.observe("hist", 5, system="b")
        reg.observe("hist", 5, system="a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert list(snap["histograms"]) == sorted(snap["histograms"])

    def test_byte_identical_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x"), a.inc("y"), a.observe("h", 2), a.observe("h", 9)
        b.observe("h", 9), b.observe("h", 2), b.inc("y"), b.inc("x")
        assert (json.dumps(a.snapshot(), sort_keys=True)
                == json.dumps(b.snapshot(), sort_keys=True))

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("commits", 7, system="SI-TM")
        reg.set_gauge("clock", 3.5)
        reg.observe("depth", 2)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestProvenanceCounters:
    """The new provenance counters: emitted on telemetry runs,
    deterministic in the canonical snapshot."""

    def _snapshot(self):
        from repro.harness.runner import run_once
        result = run_once("list", "2PL", 4, 2, profile="test",
                          telemetry=True)
        return result.metrics, result

    def test_wasted_and_outcome_counters_emitted(self):
        snap, result = self._snapshot()
        wasted = {k: v for k, v in snap["counters"].items()
                  if k.startswith("tm_wasted_cycles_total{")}
        outcomes = {k: v for k, v in snap["counters"].items()
                    if k.startswith("tm_aborts_by_outcome_total{")}
        assert wasted and outcomes
        assert all("system=2PL" in k for k in wasted)
        assert all("cause=" in k for k in wasted)
        # the outcome counter partitions the aborts exactly
        assert sum(outcomes.values()) == result.aborts
        # and the wasted ledger covers every abort span's cycles
        spans = result.spans
        assert sum(wasted.values()) == sum(
            (row["end_cycle"] - row["begin_cycle"])
            for row in spans if row.get("outcome") == "abort")

    def test_snapshot_deterministic_across_identical_runs(self):
        first, _ = self._snapshot()
        second, _ = self._snapshot()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))
