"""Windowed time-series sampler: exactness, merging, schema, anomalies.

Four claims under test:

* **exactness** — window counters sum to the run's own totals, and a
  sampled run is byte-identical in outcome to an unsampled one (the
  passive-observer invariant behind the zero-overhead contract);
* **mergeability** — ``merge_timeseries`` is associative and
  order-independent (hypothesis property), so sharded campaigns can
  combine series without re-running anything;
* **schema** — the JSONL form round-trips and the checker accepts
  every artifact we generate while rejecting malformed rows;
* **anomaly detection** — the livelock rule fires within a pinned
  window budget on the seeded fault plan from the corpus, and every
  rule stays silent across the clean corpus and clean workload runs.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.harness.runner import run_once
from repro.obs.live import (
    DEFAULT_WINDOW_CYCLES,
    TIMESERIES_SCHEMA_VERSION,
    AbortSpike,
    AnomalyDetector,
    LivelockSuspected,
    StarvationStall,
    TimeSeriesSampler,
    TimeSeriesWriter,
    VersionGrowth,
    load_timeseries_jsonl,
    merge_timeseries,
    merge_window_rows,
    timeseries_to_jsonl,
    validate_timeseries,
)
from repro.oracle.fuzz import run_schedule

CORPUS = pathlib.Path(__file__).parent.parent / "corpus" / "schedules"

#: the pinned detection budget: LivelockSuspected must fire within
#: this many 500-cycle windows on the seeded livelock fault plan
LIVELOCK_WINDOW_BUDGET = 5


def _telemetry_run(**kwargs):
    return run_once("rbtree", "SI-TM", 4, seed=1, profile="test",
                    telemetry=True, **kwargs)


class TestExactness:
    def test_window_totals_match_run_totals(self):
        result = _telemetry_run()
        series = result.timeseries
        assert series is not None
        assert series["schema_version"] == TIMESERIES_SCHEMA_VERSION
        assert series["window_cycles"] == DEFAULT_WINDOW_CYCLES
        assert series["totals"]["commits"] == result.commits
        assert series["totals"]["aborts"] == result.aborts
        assert sum(r["commits"] for r in series["windows"]) \
            == result.commits
        assert sum(r["aborts"] for r in series["windows"]) \
            == result.aborts
        # every attempt begins: begins == commits + aborts
        assert series["totals"]["begins"] == result.commits + result.aborts

    def test_abort_causes_partition_aborts(self):
        series = _telemetry_run().timeseries
        for row in series["windows"]:
            assert sum(row["causes"].values()) == row["aborts"]
            assert 0.0 <= row["abort_rate"] <= 1.0

    def test_windows_are_contiguous_in_index(self):
        series = _telemetry_run().timeseries
        indices = [row["window"] for row in series["windows"]]
        assert indices == sorted(indices)
        for row in series["windows"]:
            assert row["end_cycle"] - row["start_cycle"] \
                == series["window_cycles"]

    def test_sampler_does_not_perturb_the_run(self):
        """Passive observer: same schedule with or without telemetry."""
        with_ts = _telemetry_run()
        without = run_once("rbtree", "SI-TM", 4, seed=1, profile="test")
        assert with_ts.commits == without.commits
        assert with_ts.aborts == without.aborts
        assert with_ts.makespan_cycles == without.makespan_cycles

    def test_custom_window_width_rescales_rows(self):
        result = _telemetry_run(window_cycles=1_000)
        series = result.timeseries
        assert series["window_cycles"] == 1_000
        assert series["totals"]["commits"] == result.commits

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(window_cycles=0)


# ----------------------------------------------------------------------
# merge properties


def _histogram(counts):
    buckets = {str(2 ** i): c for i, c in enumerate(counts) if c}
    total = sum(counts)
    if not total:
        return None
    return {"buckets": buckets, "count": total, "sum": total * 3,
            "min": 1, "max": 2 ** len(counts)}


@st.composite
def window_rows(draw, index):
    commits = draw(st.integers(0, 50))
    causes = draw(st.dictionaries(
        st.sampled_from(["WW-CONFLICT", "VALIDATION", "CAPACITY"]),
        st.integers(1, 20), max_size=3))
    aborts = sum(causes.values())
    width = 1_000
    row = {
        "kind": "window", "window": index,
        "start_cycle": index * width, "end_cycle": (index + 1) * width,
        "begins": commits + aborts, "commits": commits, "aborts": aborts,
        "abort_rate": aborts / (commits + aborts) if commits + aborts
        else 0.0,
        "causes": {k: causes[k] for k in sorted(causes)},
        "begin_stalls": draw(st.integers(0, 10)),
        "stall_cycles": draw(st.integers(0, 500)),
        "backoff_cycles": draw(st.integers(0, 500)),
        "commit_wait_cycles": draw(st.integers(0, 500)),
        "escalations": draw(st.integers(0, 3)),
        "wasted_cycles": draw(st.integers(0, 2_000)),
        "span_cycles": _histogram(draw(
            st.lists(st.integers(0, 9), min_size=0, max_size=5))),
        "versions": _histogram(draw(
            st.lists(st.integers(0, 9), min_size=0, max_size=3))),
    }
    return row


@st.composite
def series_documents(draw):
    indices = draw(st.lists(st.integers(0, 6), min_size=0, max_size=4,
                            unique=True))
    rows = [draw(window_rows(i)) for i in sorted(indices)]
    return {
        "schema_version": TIMESERIES_SCHEMA_VERSION,
        "window_cycles": 1_000,
        "windows": rows,
        "alerts": [],
        "totals": {
            "begins": sum(r["begins"] for r in rows),
            "commits": sum(r["commits"] for r in rows),
            "aborts": sum(r["aborts"] for r in rows),
            "begin_stalls": sum(r["begin_stalls"] for r in rows),
            "escalations": sum(r["escalations"] for r in rows),
            "wasted_cycles": sum(r["wasted_cycles"] for r in rows),
        },
    }


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(series_documents(), series_documents(), series_documents())
    def test_merge_is_associative(self, a, b, c):
        left = merge_timeseries(merge_timeseries(a, b), c)
        right = merge_timeseries(a, merge_timeseries(b, c))
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(series_documents(), series_documents())
    def test_merge_is_order_independent(self, a, b):
        assert merge_timeseries(a, b) == merge_timeseries(b, a)

    @settings(max_examples=40, deadline=None)
    @given(series_documents(), series_documents())
    def test_merge_preserves_totals(self, a, b):
        merged = merge_timeseries(a, b)
        for key in merged["totals"]:
            assert merged["totals"][key] == (a["totals"].get(key, 0)
                                             + b["totals"].get(key, 0))
        assert sum(r["commits"] for r in merged["windows"]) \
            == merged["totals"]["commits"]

    def test_merge_rejects_mismatched_widths(self):
        a = {"schema_version": 1, "window_cycles": 1_000, "windows": [],
             "alerts": [], "totals": {}}
        b = dict(a, window_cycles=2_000)
        with pytest.raises(ValueError):
            merge_timeseries(a, b)

    def test_merge_rejects_mismatched_window_rows(self):
        a = {"window": 0, "start_cycle": 0, "end_cycle": 1_000}
        b = {"window": 1, "start_cycle": 1_000, "end_cycle": 2_000}
        with pytest.raises(ValueError):
            merge_window_rows(a, b)

    def test_merging_two_real_shards(self):
        """Two seeds of the same cell merge into exact combined totals."""
        one = run_once("rbtree", "SI-TM", 4, seed=1, profile="test",
                       telemetry=True)
        two = run_once("rbtree", "SI-TM", 4, seed=2, profile="test",
                       telemetry=True)
        merged = merge_timeseries(one.timeseries, two.timeseries)
        assert merged["totals"]["commits"] == one.commits + two.commits
        assert merged["totals"]["aborts"] == one.aborts + two.aborts


# ----------------------------------------------------------------------
# JSONL schema


class TestJsonlSchema:
    def test_round_trip_preserves_windows_and_alerts(self):
        series = _telemetry_run().timeseries
        text = timeseries_to_jsonl(series)
        loaded = load_timeseries_jsonl(text)
        assert len(loaded["headers"]) == 1
        assert loaded["headers"][0]["totals"] == series["totals"]
        originals = [json.loads(json.dumps(r, sort_keys=True))
                     for r in series["windows"]]
        assert loaded["windows"] == originals
        assert loaded["alerts"] == series["alerts"]

    def test_exported_artifact_validates(self):
        series = _telemetry_run().timeseries
        assert validate_timeseries(timeseries_to_jsonl(series)) == []

    def test_extra_keys_are_stamped_and_tolerated(self):
        series = _telemetry_run().timeseries
        text = timeseries_to_jsonl(series, extra={"spec": "cell-1"})
        assert validate_timeseries(text) == []
        loaded = load_timeseries_jsonl(text)
        assert all(row["spec"] == "cell-1" for row in loaded["windows"])

    def test_validator_rejects_malformed_rows(self):
        bad = "\n".join([
            json.dumps({"kind": "header", "schema_version": 99}),
            json.dumps({"kind": "window", "window": -1}),
            json.dumps({"kind": "alert"}),
            json.dumps({"kind": "mystery"}),
            "not json at all",
        ])
        problems = validate_timeseries(bad)
        assert len(problems) >= 5
        assert any("schema_version" in p for p in problems)
        assert any("unknown kind" in p for p in problems)

    def test_writer_streams_a_valid_artifact(self, tmp_path):
        """The live-event sink produces the same schema as export."""
        path = tmp_path / "series.jsonl"
        writer = TimeSeriesWriter(path)
        series = _telemetry_run().timeseries
        for row in series["windows"]:
            writer(dict(row, event="window", spec="cell-1"))
        for alert in series["alerts"]:
            writer(dict(alert, event="alert", spec="cell-1"))
        writer(dict(event="spec-done", spec="cell-1"))  # ignored
        writer.close()
        text = path.read_text()
        assert validate_timeseries(text) == []
        loaded = load_timeseries_jsonl(text)
        assert len(loaded["headers"]) == 1
        assert len(loaded["windows"]) == len(series["windows"])


# ----------------------------------------------------------------------
# anomaly detection


def _load_plan(name):
    return json.loads((CORPUS / name).read_text())


class TestAnomalyDetection:
    def test_livelock_plan_flags_within_window_budget(self):
        """The pinned detection claim: the seeded livelock fault plan
        (PR 5's corpus) raises LivelockSuspected within
        LIVELOCK_WINDOW_BUDGET windows of 500 cycles, before the run
        dies of retry overrun."""
        plan = _load_plan("livelock_under_fault.json")
        sampler = TimeSeriesSampler(window_cycles=500)
        with pytest.raises(SimulationError):
            run_schedule(plan, "SI-TM", seed=0, tracer=sampler)
        sampler.finish()
        series = sampler.export()
        rules = [alert["rule"] for alert in series["alerts"]]
        assert "LivelockSuspected" in rules
        first = min(alert["window"] for alert in series["alerts"]
                    if alert["rule"] == "LivelockSuspected")
        assert first <= LIVELOCK_WINDOW_BUDGET

    @pytest.mark.parametrize("name", sorted(
        p.name for p in CORPUS.glob("*.json")
        if "livelock" not in p.name))
    @pytest.mark.parametrize("system", ["SI-TM", "2PL"])
    def test_clean_corpus_is_silent(self, name, system):
        sampler = TimeSeriesSampler(window_cycles=500)
        run_schedule(_load_plan(name), system, seed=0, tracer=sampler)
        sampler.finish()
        assert sampler.export()["alerts"] == []

    @pytest.mark.parametrize("system", ["SI-TM", "2PL", "SONTM"])
    def test_clean_workload_run_is_silent(self, system):
        result = run_once("rbtree", system, 4, seed=1, profile="test",
                          telemetry=True)
        assert result.timeseries["alerts"] == []

    def test_abort_spike_fires_on_rising_edge_only(self):
        rule = AbortSpike(min_aborts=4)
        quiet = {"window": 0, "abort_rate": 0.05, "aborts": 1,
                 "commits": 19}
        spike = {"window": 1, "abort_rate": 0.9, "aborts": 18,
                 "commits": 2}
        assert rule.observe(quiet) is None
        alert = rule.observe(spike)
        assert alert is not None and alert["rule"] == "AbortSpike"
        # still hot: same episode must not re-fire
        assert rule.observe(dict(spike, window=2)) is None

    def test_starvation_stall_needs_consecutive_windows(self):
        rule = StarvationStall(windows=2)
        stalled = {"window": 0, "commits": 0, "begin_stalls": 3}
        assert rule.observe(stalled) is None
        alert = rule.observe(dict(stalled, window=1))
        assert alert is not None and alert["rule"] == "StarvationStall"
        # a commit resets the streak
        rule.observe({"window": 2, "commits": 5, "begin_stalls": 0})
        assert rule.observe(dict(stalled, window=3)) is None

    def test_livelock_resets_after_commit(self):
        rule = LivelockSuspected(windows=2, min_aborts=2)
        churning = {"window": 0, "commits": 0, "aborts": 5}
        assert rule.observe(churning) is None
        assert rule.observe(dict(churning, window=1)) is not None
        rule.observe({"window": 2, "commits": 1, "aborts": 0})
        assert rule.observe(dict(churning, window=3)) is None

    def test_version_growth_tracks_histogram_max(self):
        rule = VersionGrowth(min_versions=4, factor=2.0)
        low = {"window": 0, "versions": {"buckets": {}, "count": 1,
                                         "sum": 2, "min": 2, "max": 2}}
        high = {"window": 1, "versions": {"buckets": {}, "count": 1,
                                          "sum": 16, "min": 16,
                                          "max": 16}}
        assert rule.observe(low) is None
        alert = rule.observe(high)
        assert alert is not None and alert["rule"] == "VersionGrowth"

    def test_detector_defaults_to_all_rules(self):
        detector = AnomalyDetector()
        names = {rule.name for rule in detector.rules}
        assert names == {"AbortSpike", "StarvationStall",
                         "LivelockSuspected", "VersionGrowth"}
