"""Telemetry text report tests."""

from repro.obs import (MetricsRegistry, Span, abort_attribution,
                       metrics_table, version_occupancy)


def _spans():
    return [
        Span(uid=0, thread_id=0, label="insert", begin_cycle=0,
             end_cycle=1000, outcome="commit"),
        Span(uid=1, thread_id=1, label="insert", begin_cycle=0,
             end_cycle=2000, outcome="abort", cause="write-write",
             retries=1),
        Span(uid=2, thread_id=1, label="lookup", begin_cycle=0,
             end_cycle=500, outcome="commit"),
    ]


class TestAbortAttribution:
    def test_counts_and_causes(self):
        text = abort_attribution(_spans())
        assert "insert" in text and "lookup" in text
        assert "write-write:1" in text

    def test_wasted_cycles_only_from_aborts(self):
        text = abort_attribution(_spans())
        insert_row = next(line for line in text.splitlines()
                          if line.startswith("insert"))
        assert "2.0" in insert_row  # 2000 wasted cycles = 2.0 kcycles


class TestVersionOccupancy:
    def test_renders_histogram(self):
        reg = MetricsRegistry()
        for length in (1, 2, 2, 4):
            reg.observe("mvm_version_list_length", length)
        reg.inc("mvm_versions_coalesced", 3)
        text = version_occupancy(reg.snapshot())
        assert "<= 2" in text
        assert "installs=4" in text
        assert "coalesced=3" in text

    def test_empty_snapshot(self):
        assert "no installs" in version_occupancy({})


class TestMetricsTable:
    def test_lists_every_kind(self):
        reg = MetricsRegistry()
        reg.inc("commits", 5)
        reg.set_gauge("clock", 1.5)
        reg.observe("cycles", 100)
        text = metrics_table(reg.snapshot())
        assert "counter" in text and "gauge" in text and "histogram" in text

    def test_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("mvm_installs", 1)
        reg.inc("txn_commits", 1)
        text = metrics_table(reg.snapshot(), prefix="mvm_")
        assert "mvm_installs" in text and "txn_commits" not in text
