"""Flight recorder: bounded rings, atomic persistence, crash capture.

The contract under test: every way a telemetry cell can die —
in-process :class:`SimulationError` (retry overrun, watchdog), a
SIGKILLed pool worker, a timeout — leaves a valid
``flight-<spec-digest>.json`` behind, and the executor attaches its
path to the quarantined cell's :class:`RunFailure`; a clean finish
leaves nothing.
"""

import dataclasses

import pytest

from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.faults import FaultPlan
from repro.harness.executor import Executor, RunFailure
from repro.harness.spec import ExperimentSpec
from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    flight_dir,
    flight_path,
    load_flight,
    validate_flight,
)


def _window_row(index, commits=5, aborts=1):
    return {"kind": "window", "window": index, "commits": commits,
            "aborts": aborts}


class TestRecorderRings:
    def test_rings_are_bounded_but_totals_are_not(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.json", window_ring=4,
                                  span_ring=3)
        for index in range(10):
            recorder.note_window(_window_row(index))
        for index in range(8):
            recorder.note_span({"thread": 0, "outcome": "commit",
                                "end_cycle": index})
        assert len(recorder.windows) == 4
        assert len(recorder.spans) == 3
        assert recorder.totals["windows"] == 10
        assert recorder.totals["spans"] == 8
        assert recorder.totals["commits"] == 50
        assert recorder.totals["aborts"] == 10
        # the ring keeps the *most recent* windows
        assert [w["window"] for w in recorder.windows] == [6, 7, 8, 9]

    def test_rejects_nonpositive_rings(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "f.json", window_ring=0)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "f.json", persist_every=0)

    def test_persist_cadence(self, tmp_path):
        path = tmp_path / "f.json"
        recorder = FlightRecorder(path, persist_every=3)
        recorder.note_window(_window_row(0))
        recorder.note_window(_window_row(1))
        assert not path.exists()
        recorder.note_window(_window_row(2))
        assert path.exists()
        assert load_flight(path)["totals"]["windows"] == 3

    def test_start_writes_immediately(self, tmp_path):
        """A worker can be SIGKILLed before any window closes; the
        start snapshot must already name the spec."""
        path = tmp_path / "f.json"
        recorder = FlightRecorder(path, context="cell-under-test")
        recorder.start()
        document = load_flight(path)
        assert validate_flight(document) == []
        assert document["status"] == "running"
        assert document["context"] == "cell-under-test"

    def test_dump_round_trip_validates(self, tmp_path):
        path = tmp_path / "f.json"
        recorder = FlightRecorder(path, context="cell", window_ring=8)
        recorder.start()
        for index in range(20):
            recorder.note_window(_window_row(index))
        recorder.note_alert({"kind": "alert", "rule": "AbortSpike",
                             "window": 19, "detail": "x", "value": 0.9})
        recorder.dump(reason="transaction 'x' exceeded 40 retries")
        document = load_flight(path)
        assert validate_flight(document) == []
        assert document["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert document["status"] == "crashed"
        assert "retries" in document["reason"]
        assert document["totals"]["windows"] == 20
        assert len(document["windows"]) == 8
        assert document["alerts"][0]["rule"] == "AbortSpike"

    def test_dump_is_idempotent(self, tmp_path):
        path = tmp_path / "f.json"
        recorder = FlightRecorder(path)
        recorder.dump(reason="first")
        recorder.dump(reason="second")
        assert load_flight(path)["reason"] == "first"

    def test_discard_removes_and_tolerates_missing(self, tmp_path):
        path = tmp_path / "f.json"
        recorder = FlightRecorder(path)
        recorder.start()
        recorder.discard()
        assert not path.exists()
        recorder.discard()  # no artifact: still fine

    def test_no_torn_tmp_files_left_behind(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "f.json")
        recorder.start()
        recorder.persist()
        assert [p.name for p in tmp_path.iterdir()] == ["f.json"]


class TestValidateFlight:
    def test_rejects_malformed_documents(self):
        assert validate_flight([]) != []
        assert "bad status" in " ".join(validate_flight(
            {"schema_version": 1, "status": "zombie", "totals": {},
             "windows": [], "alerts": [], "recent_spans": []}))
        assert any("reason" in p for p in validate_flight(
            {"schema_version": 1, "status": "crashed", "totals": {},
             "windows": [], "alerts": [], "recent_spans": []}))
        assert any("totals.windows" in p for p in validate_flight(
            {"schema_version": 1, "status": "running", "reason": None,
             "context": None, "totals": {"windows": 1},
             "windows": [{}, {}], "alerts": [], "recent_spans": []}))

    def test_flight_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SITM_FLIGHT_DIR", str(tmp_path / "fl"))
        assert flight_dir() == tmp_path / "fl"
        assert flight_path("abc") == tmp_path / "fl" / "flight-abc.json"


def _retry_capped_config(limit=40):
    config = SimConfig()
    return config.replace(
        tm=dataclasses.replace(config.tm, max_retries=limit))


#: a telemetry cell that dies in-process of retry overrun: every
#: commit attempt is fault-aborted until the retry cap gives up
DOOMED = ExperimentSpec("array", "SI-TM", 2, 1, "test", telemetry=True,
                        config=_retry_capped_config(),
                        faults=FaultPlan(abort_rate=1.0, abort_burst=64))


class TestRunIntegration:
    def test_clean_run_leaves_no_artifact(self):
        spec = ExperimentSpec("rbtree", "SI-TM", 2, 1, "test",
                              telemetry=True)
        spec.run()
        assert not flight_path(spec.spec_hash()).exists()

    def test_simulation_error_dumps_the_artifact(self):
        with pytest.raises(SimulationError):
            DOOMED.run()
        document = load_flight(flight_path(DOOMED.spec_hash()))
        assert validate_flight(document) == []
        assert document["status"] == "crashed"
        assert "retries" in document["reason"]
        assert document["context"] == str(DOOMED)
        # the run attempted work before dying: spans were ringed
        assert document["totals"]["spans"] > 0

    def test_executor_attaches_flight_to_inline_failure(self):
        results = Executor(jobs=1, cache=False).run([DOOMED])
        failure = results[DOOMED]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "error"
        assert failure.flight is not None
        assert validate_flight(load_flight(failure.flight)) == []

    def test_sigkilled_worker_leaves_a_flight_artifact(self):
        """The SIGKILL case: the worker never unwinds Python, so only
        the recorder's periodic persists (here the start snapshot) can
        leave evidence — and the RunFailure must point at it."""
        crash = ExperimentSpec("array", "SI-TM", 2, 1, "test",
                               telemetry=True,
                               faults=FaultPlan(crash_at_begin=3))
        clean = ExperimentSpec("list", "2PL", 2, 1, "test")
        executor = Executor(jobs=2, cache=False)
        results = executor.run([clean, crash])
        failure = results[crash]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "crash"
        assert failure.flight is not None
        document = load_flight(failure.flight)
        assert validate_flight(document) == []
        assert document["status"] == "running"  # SIGKILL never unwound
        assert document["context"] == str(crash)
        assert not getattr(results[clean], "failed", False)

    def test_failure_without_artifact_has_no_flight(self):
        """A non-telemetry cell dies with no recorder: flight is None."""
        crash = ExperimentSpec("array", "SI-TM", 2, 1, "test",
                               faults=FaultPlan(crash_at_begin=3))
        results = Executor(jobs=2, cache=False).run([crash])
        failure = results[crash]
        assert isinstance(failure, RunFailure)
        assert failure.flight is None

    def test_crash_spec_never_runs_inline(self):
        """Process-level faults go to a sacrificial worker even at
        ``jobs=1``: the harness process must survive the SIGKILL."""
        crash = ExperimentSpec("array", "SI-TM", 2, 1, "test",
                               faults=FaultPlan(crash_at_begin=3))
        results = Executor(jobs=1, cache=False).run([crash])
        failure = results[crash]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "crash"

    def test_run_failure_round_trips_with_flight(self):
        failure = RunFailure(spec="x", spec_hash="0" * 24, kind="crash",
                             message="worker died", attempts=2,
                             flight="results/flight/flight-0.json")
        assert RunFailure.from_dict(failure.to_dict()) == failure
