"""Span recording and tracer composition tests.

The load-bearing guarantee: composing a :class:`SpanRecorder` next to
the oracle's :class:`HistoryRecorder` through :class:`MultiTracer`
must not change the recorded history — telemetry observes, never
perturbs.
"""

import json

import pytest

from repro.obs import (MetricsRegistry, MultiTracer, Span, SpanRecorder,
                       StreamingSpanRecorder, load_spans_jsonl,
                       merge_span_aggregates, validate_span_log)
from repro.oracle.fuzz import generate_schedule, run_schedule
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def counter_body(addr):
    def body():
        value = yield Read(addr)
        yield Compute(2)
        yield Write(addr, value + 1)
    return body


class TestSpanRecorder:
    def test_one_span_per_attempt(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        programs = [[spec(counter_body(addr)) for _ in range(10)]
                    for _ in range(3)]
        stats = run_program(machine, "SI-TM", programs, tracer=recorder)
        assert len(recorder.spans) == stats.total_commits + stats.total_aborts
        commits = [s for s in recorder.spans if s.outcome == "commit"]
        assert len(commits) == stats.total_commits

    def test_spans_carry_clocks_and_footprints(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        run_program(machine, "SI-TM", [[spec(counter_body(addr))]],
                    tracer=recorder)
        (span,) = recorder.spans
        assert span.end_cycle > span.begin_cycle >= 0
        assert span.reads == 1 and span.writes == 1
        assert span.commit_ts is not None

    def test_abort_spans_name_their_cause(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        programs = [[spec(counter_body(addr)) for _ in range(20)]
                    for _ in range(4)]
        stats = run_program(machine, "2PL", programs, tracer=recorder)
        aborted = [s for s in recorder.spans if s.outcome == "abort"]
        assert len(aborted) == stats.total_aborts
        assert all(s.cause for s in aborted)

    def test_metrics_fed_per_outcome(self, machine):
        addr = machine.mvmalloc(1)
        registry = MetricsRegistry()
        recorder = SpanRecorder(metrics=registry)
        run_program(machine, "SI-TM",
                    [[spec(counter_body(addr)) for _ in range(5)]],
                    tracer=recorder)
        hist = registry.histogram("txn_cycles", outcome="commit")
        assert hist is not None and hist["count"] == 5

    def test_dict_round_trip(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        run_program(machine, "SI-TM", [[spec(counter_body(addr))]],
                    tracer=recorder)
        for span in recorder.spans:
            clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
            assert clone == span


class _CallLog:
    """Tracer stub appending (tag, hook) tuples to a shared list."""

    def __init__(self, tag, calls):
        self.tag, self.calls = tag, calls

    def on_begin(self, txn):
        self.calls.append((self.tag, "begin"))

    def on_read(self, txn, addr, site, value=None):
        self.calls.append((self.tag, "read"))

    def on_write(self, txn, addr, site, value=None):
        self.calls.append((self.tag, "write"))

    def on_commit(self, txn):
        self.calls.append((self.tag, "commit"))

    def on_abort(self, txn, cause):
        self.calls.append((self.tag, "abort"))


class TestMultiTracer:
    def test_forwards_in_construction_order(self):
        calls = []
        multi = MultiTracer(_CallLog("a", calls), _CallLog("b", calls))
        txn = object()
        multi.on_begin(txn)
        multi.on_read(txn, 0, "s")
        multi.on_write(txn, 0, "s")
        multi.on_commit(txn)
        assert calls == [("a", "begin"), ("b", "begin"),
                         ("a", "read"), ("b", "read"),
                         ("a", "write"), ("b", "write"),
                         ("a", "commit"), ("b", "commit")]

    def test_none_children_filtered(self):
        calls = []
        multi = MultiTracer(None, _CallLog("a", calls), None)
        assert len(multi) == 1

    def test_attach_engine_forwarded_to_willing_children(self):
        recorder = SpanRecorder()
        plain = _CallLog("p", [])
        multi = MultiTracer(plain, recorder)
        sentinel = object()
        multi.attach_engine(sentinel)
        assert recorder._engine is sentinel


class TestStreamingSpanRecorder:
    """Bounded-memory recording: cap held, aborts kept, exact aggregates."""

    def _contended(self, machine, tracer, txns=25, threads=4,
                   system="2PL"):
        addr = machine.mvmalloc(1)
        programs = [[spec(counter_body(addr)) for _ in range(txns)]
                    for _ in range(threads)]
        return run_program(machine, system, programs, tracer=tracer)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamingSpanRecorder(cap=0)
        with pytest.raises(ValueError):
            StreamingSpanRecorder(cap=-4)

    def test_memory_held_at_cap(self, machine):
        streaming = StreamingSpanRecorder(cap=8, seed=1)
        stats = self._contended(machine, streaming, txns=40)
        closed = stats.total_commits + stats.total_aborts
        assert closed > 4 * streaming.cap  # sampling actually engaged
        # one cap-bounded buffer per retention class (commits + aborts)
        assert streaming.max_retained <= 2 * streaming.cap
        assert len(streaming) <= 2 * streaming.cap
        # nothing lost from the books: every closed span is either
        # retained, flushed, or counted as discarded
        assert (len(streaming) + streaming.flushed_spans
                + streaming.commits_sampled_out
                + streaming.aborts_dropped) == closed
        assert streaming.total_commits == stats.total_commits
        assert streaming.total_aborts == stats.total_aborts

    def test_aborts_always_kept(self, machine):
        full = SpanRecorder()
        streaming = StreamingSpanRecorder(cap=512, seed=0)
        self._contended(machine, MultiTracer(full, streaming))
        aborted = sorted(s.uid for s in full.spans if s.outcome == "abort")
        assert aborted, "contended counter run should abort"
        assert len(aborted) <= streaming.cap
        retained_aborts = sorted(s.uid for s in streaming.retained()
                                 if s.outcome == "abort")
        assert retained_aborts == aborted
        assert streaming.aborts_dropped == 0

    def test_aggregate_exact_despite_sampling(self, machine):
        full = SpanRecorder()
        streaming = StreamingSpanRecorder(cap=4, seed=2)
        self._contended(machine, MultiTracer(full, streaming), txns=30)
        closed = [s for s in full.spans if s.outcome != "open"]
        assert streaming.commits_sampled_out > 0
        agg = streaming.aggregate()
        assert agg["total_spans"] == len(closed)
        for outcome in ("commit", "abort"):
            matching = [s for s in closed if s.outcome == outcome]
            if not matching:
                assert outcome not in agg["outcomes"]
                continue
            cycles = agg["outcomes"][outcome]["cycles"]
            assert cycles["count"] == len(matching)
            assert cycles["sum"] == sum(s.duration for s in matching)
            reads = agg["outcomes"][outcome]["reads"]
            assert reads["sum"] == sum(s.reads for s in matching)

    def test_merge_span_aggregates_sums_shards(self, machine):
        shard_a = StreamingSpanRecorder(cap=4, seed=0)
        self._contended(machine, shard_a, txns=10)
        addr = machine.mvmalloc(1)
        shard_b = StreamingSpanRecorder(cap=4, seed=0)
        run_program(machine, "SI-TM",
                    [[spec(counter_body(addr)) for _ in range(8)]
                     for _ in range(2)],
                    tracer=shard_b)
        merged = merge_span_aggregates(shard_a.aggregate(),
                                       shard_b.aggregate())
        assert merged["total_spans"] == (shard_a.aggregate()["total_spans"]
                                         + shard_b.aggregate()["total_spans"])
        for outcome, stats in merged["outcomes"].items():
            parts = [r.aggregate()["outcomes"].get(outcome)
                     for r in (shard_a, shard_b)]
            expected = sum(p["cycles"]["count"] for p in parts if p)
            assert stats["cycles"]["count"] == expected

    def test_sink_flush_round_trips_and_validates(self, machine, tmp_path):
        sink = tmp_path / "spans.jsonl"
        full = SpanRecorder()
        streaming = StreamingSpanRecorder(cap=8, seed=3, sink=str(sink),
                                          flush_every=16)
        self._contended(machine, MultiTracer(full, streaming))
        streaming.flush()
        text = sink.read_text()
        assert validate_span_log(text) == []
        loaded = load_spans_jsonl(text)
        assert len(loaded) == streaming.flushed_spans
        # with a sink, the complete abort log reaches disk
        aborted = sorted(s.uid for s in full.spans if s.outcome == "abort")
        assert sorted(s.uid for s in loaded
                      if s.outcome == "abort") == aborted
        assert streaming.aborts_dropped == 0
        by_uid = {s.uid: s for s in full.spans}
        for span in loaded:
            assert span == by_uid[span.uid]


class TestStreamingComposition:
    """Composing streaming next to full recording changes neither."""

    def _run(self, tracer, system="2PL"):
        schedule = generate_schedule(seed=5, index=2, threads=3, txns=3,
                                     cells=2, ops=4)
        from repro.common.errors import SimulationError
        try:
            run_schedule(schedule, system, seed=5, tracer=tracer)
        except SimulationError:
            pass

    def test_legacy_output_byte_identical_when_composed(self):
        alone = SpanRecorder()
        self._run(alone)
        composed = SpanRecorder()
        streaming = StreamingSpanRecorder(cap=2, seed=0)
        self._run(MultiTracer(composed, streaming))
        assert [s.to_dict() for s in composed.spans] \
            == [s.to_dict() for s in alone.spans]
        # retained spans are a verbatim subset of the full recording
        by_uid = {s.uid: s.to_dict() for s in alone.spans}
        for span in streaming.retained():
            assert span.to_dict() == by_uid[span.uid]

    def test_reservoir_deterministic_for_equal_seeds(self):
        first = StreamingSpanRecorder(cap=2, seed=7)
        self._run(first)
        second = StreamingSpanRecorder(cap=2, seed=7)
        self._run(second)
        assert [s.to_dict() for s in first.retained()] \
            == [s.to_dict() for s in second.retained()]
        assert first.aggregate() == second.aggregate()


class TestHistoryUnperturbed:
    def test_history_identical_with_and_without_telemetry(self):
        """The oracle must see the same history when spans ride along."""
        schedule = generate_schedule(seed=3, index=1)
        for system in ("2PL", "SI-TM", "SSI-TM"):
            bare, final_bare = run_schedule(schedule, system, seed=3)
            recorder = SpanRecorder()
            traced, final_traced = run_schedule(schedule, system, seed=3,
                                                tracer=recorder)
            assert final_bare == final_traced
            assert bare.to_dict() == traced.to_dict()
            assert recorder.spans  # telemetry actually captured something
