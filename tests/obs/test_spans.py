"""Span recording and tracer composition tests.

The load-bearing guarantee: composing a :class:`SpanRecorder` next to
the oracle's :class:`HistoryRecorder` through :class:`MultiTracer`
must not change the recorded history — telemetry observes, never
perturbs.
"""

import json

from repro.obs import MetricsRegistry, MultiTracer, Span, SpanRecorder
from repro.oracle.fuzz import generate_schedule, run_schedule
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def counter_body(addr):
    def body():
        value = yield Read(addr)
        yield Compute(2)
        yield Write(addr, value + 1)
    return body


class TestSpanRecorder:
    def test_one_span_per_attempt(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        programs = [[spec(counter_body(addr)) for _ in range(10)]
                    for _ in range(3)]
        stats = run_program(machine, "SI-TM", programs, tracer=recorder)
        assert len(recorder.spans) == stats.total_commits + stats.total_aborts
        commits = [s for s in recorder.spans if s.outcome == "commit"]
        assert len(commits) == stats.total_commits

    def test_spans_carry_clocks_and_footprints(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        run_program(machine, "SI-TM", [[spec(counter_body(addr))]],
                    tracer=recorder)
        (span,) = recorder.spans
        assert span.end_cycle > span.begin_cycle >= 0
        assert span.reads == 1 and span.writes == 1
        assert span.commit_ts is not None

    def test_abort_spans_name_their_cause(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        programs = [[spec(counter_body(addr)) for _ in range(20)]
                    for _ in range(4)]
        stats = run_program(machine, "2PL", programs, tracer=recorder)
        aborted = [s for s in recorder.spans if s.outcome == "abort"]
        assert len(aborted) == stats.total_aborts
        assert all(s.cause for s in aborted)

    def test_metrics_fed_per_outcome(self, machine):
        addr = machine.mvmalloc(1)
        registry = MetricsRegistry()
        recorder = SpanRecorder(metrics=registry)
        run_program(machine, "SI-TM",
                    [[spec(counter_body(addr)) for _ in range(5)]],
                    tracer=recorder)
        hist = registry.histogram("txn_cycles", outcome="commit")
        assert hist is not None and hist["count"] == 5

    def test_dict_round_trip(self, machine):
        addr = machine.mvmalloc(1)
        recorder = SpanRecorder()
        run_program(machine, "SI-TM", [[spec(counter_body(addr))]],
                    tracer=recorder)
        for span in recorder.spans:
            clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
            assert clone == span


class _CallLog:
    """Tracer stub appending (tag, hook) tuples to a shared list."""

    def __init__(self, tag, calls):
        self.tag, self.calls = tag, calls

    def on_begin(self, txn):
        self.calls.append((self.tag, "begin"))

    def on_read(self, txn, addr, site, value=None):
        self.calls.append((self.tag, "read"))

    def on_write(self, txn, addr, site, value=None):
        self.calls.append((self.tag, "write"))

    def on_commit(self, txn):
        self.calls.append((self.tag, "commit"))

    def on_abort(self, txn, cause):
        self.calls.append((self.tag, "abort"))


class TestMultiTracer:
    def test_forwards_in_construction_order(self):
        calls = []
        multi = MultiTracer(_CallLog("a", calls), _CallLog("b", calls))
        txn = object()
        multi.on_begin(txn)
        multi.on_read(txn, 0, "s")
        multi.on_write(txn, 0, "s")
        multi.on_commit(txn)
        assert calls == [("a", "begin"), ("b", "begin"),
                         ("a", "read"), ("b", "read"),
                         ("a", "write"), ("b", "write"),
                         ("a", "commit"), ("b", "commit")]

    def test_none_children_filtered(self):
        calls = []
        multi = MultiTracer(None, _CallLog("a", calls), None)
        assert len(multi) == 1

    def test_attach_engine_forwarded_to_willing_children(self):
        recorder = SpanRecorder()
        plain = _CallLog("p", [])
        multi = MultiTracer(plain, recorder)
        sentinel = object()
        multi.attach_engine(sentinel)
        assert recorder._engine is sentinel


class TestHistoryUnperturbed:
    def test_history_identical_with_and_without_telemetry(self):
        """The oracle must see the same history when spans ride along."""
        schedule = generate_schedule(seed=3, index=1)
        for system in ("2PL", "SI-TM", "SSI-TM"):
            bare, final_bare = run_schedule(schedule, system, seed=3)
            recorder = SpanRecorder()
            traced, final_traced = run_schedule(schedule, system, seed=3,
                                                tracer=recorder)
            assert final_bare == final_traced
            assert bare.to_dict() == traced.to_dict()
            assert recorder.spans  # telemetry actually captured something
