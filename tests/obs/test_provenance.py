"""Conflict provenance: killer attribution, classification, the ledger.

Two layers of coverage:

* unit tests over hand-built spans pin the classification rules
  (decisive / cascading / self-inflicted / unresolved), the Pareto
  ledger's ordering and cycle conservation, merging, and the DOT/JSON
  exports;
* the **overlap property**: across the persisted schedule corpus and
  hypothesis-generated schedules, under all six backends, every abort
  that names a killer names one whose span actually overlapped the
  victim's — and for the backends whose conflict detection always knows
  the killer, every conflict-caused abort names one.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.obs import (MetricsRegistry, Span, SpanRecorder, blame_table,
                       build_provenance, merge_provenance)
from repro.obs.provenance import (CASCADING, DECISIVE, SELF_INFLICTED,
                                  SELF_SITE, UNRESOLVED, classify_abort,
                                  record_provenance_metrics)
from repro.oracle.fuzz import generate_schedule, run_schedule
from repro.tm import SYSTEMS

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus" / "schedules"
CLEAN_CORPUS = sorted(p for p in CORPUS_DIR.glob("*.json")
                      if p.stem != "livelock_under_fault")
ALL_SYSTEMS = sorted(SYSTEMS)

#: abort causes that always carry a killer for these backends: their
#: conflict-detection sites each know the conflicting transaction
#: (absent injected faults, whose spurious aborts reuse these causes)
KILLER_GUARANTEED = {
    "2PL": {"read-write", "write-write"},
    "HybridHTM": {"read-write", "write-write"},
    "SI-TM": {"write-write"},
    "LogTM": {"read-write"},
    "SONTM": {"son-range-empty"},
    "SSI-TM": set(),  # pivots between still-active peers stay anonymous
}


def _span(uid, thread=0, label="t", begin=0, end=100, outcome="abort",
          cause="write-write", **kw):
    return Span(uid=uid, thread_id=thread, label=label, begin_cycle=begin,
                end_cycle=end, outcome=outcome, cause=cause, **kw)


class TestClassification:
    def test_killer_that_committed_is_decisive(self):
        spans = [_span(0, outcome="commit", cause=None),
                 _span(1, killer_uid=0, killer_tid=1, killer_label="t")]
        report = build_provenance(spans)
        assert report.by_class[DECISIVE] == 1
        assert report.aborts == 1 and report.commits == 1

    def test_killer_that_aborted_is_cascading(self):
        spans = [_span(0), _span(1, killer_uid=0, killer_tid=1)]
        assert build_provenance(spans).by_class[CASCADING] == 1

    def test_no_killer_is_self_inflicted(self):
        report = build_provenance([_span(0, cause="read-capacity")])
        assert report.by_class[SELF_INFLICTED] == 1
        assert (SELF_SITE, "t") in report.edges

    def test_unknown_killer_is_unresolved(self):
        # killer uid 99 has no span (sampled out of a streamed log)
        report = build_provenance([_span(1, killer_uid=99, killer_tid=2)])
        assert report.by_class[UNRESOLVED] == 1

    def test_open_killer_is_unresolved(self):
        spans = [_span(0, outcome="open", cause=None, end=None),
                 _span(1, killer_uid=0, killer_tid=1)]
        assert build_provenance(spans).by_class[UNRESOLVED] == 1

    def test_classify_abort_directly(self):
        victim = _span(1, killer_uid=0, killer_tid=2)
        assert classify_abort(victim, {0: "commit"}) == DECISIVE
        assert classify_abort(victim, {0: "abort"}) == CASCADING
        assert classify_abort(victim, {}) == UNRESOLVED
        assert classify_abort(_span(2), {}) == SELF_INFLICTED


class TestLedger:
    def _spans(self):
        return [
            _span(0, outcome="commit", cause=None, label="w"),
            _span(1, begin=0, end=500, label="a", killer_uid=0,
                  killer_tid=1, killer_label="w"),
            _span(2, begin=0, end=300, label="a", killer_uid=0,
                  killer_tid=1, killer_label="w"),
            _span(3, begin=0, end=100, label="b", cause="read-capacity"),
        ]

    def test_cycle_conservation(self):
        report = build_provenance(self._spans())
        assert report.wasted_cycles == 900
        assert sum(e["wasted_cycles"]
                   for e in report.edges.values()) == 900
        durations = sum(s.duration for s in self._spans()
                        if s.outcome == "abort")
        assert report.wasted_cycles == durations

    def test_wasted_by_thread_partition(self):
        report = build_provenance(self._spans())
        assert sum(report.wasted_by_thread.values()) == \
            report.wasted_cycles

    def test_pareto_sorted_with_cumulative_share(self):
        rows = build_provenance(self._spans()).pareto()
        assert [r["wasted_cycles"] for r in rows] == \
            sorted((r["wasted_cycles"] for r in rows), reverse=True)
        assert rows[-1]["cumulative_share"] == pytest.approx(1.0)
        assert rows[0]["killer"] == "w" and rows[0]["victim"] == "a"

    def test_blame_table_renders(self):
        table = blame_table(build_provenance(self._spans()))
        assert "w" in table and "(self)" in table
        assert "decisive=2" in table

    def test_merge_sums_edges_and_classes(self):
        a = build_provenance(self._spans())
        b = build_provenance(self._spans())
        merged = merge_provenance([a, b])
        assert merged.wasted_cycles == 2 * a.wasted_cycles
        assert merged.by_class[DECISIVE] == 2 * a.by_class[DECISIVE]
        assert merged.edges[("w", "a")]["aborts"] == 4

    def test_to_dict_is_json_safe_and_deterministic(self):
        report = build_provenance(self._spans())
        once = json.dumps(report.to_dict(), sort_keys=True)
        again = json.dumps(build_provenance(self._spans()).to_dict(),
                           sort_keys=True)
        assert once == again

    def test_to_dot_names_every_edge(self):
        report = build_provenance(self._spans())
        dot = report.to_dot()
        assert dot.startswith("digraph conflicts {")
        for killer, victim in report.edges:
            assert f'"{killer}" -> "{victim}"' in dot


class TestProvenanceMetrics:
    def test_counters_emitted_and_deterministic(self):
        spans = TestLedger()._spans()
        registry = MetricsRegistry()
        record_provenance_metrics(registry, "SI-TM", spans)
        snapshot = registry.snapshot()
        wasted = {k: v for k, v in snapshot["counters"].items()
                  if k.startswith("tm_wasted_cycles_total")}
        outcomes = {k: v for k, v in snapshot["counters"].items()
                    if k.startswith("tm_aborts_by_outcome_total")}
        assert sum(wasted.values()) == 900
        assert sum(outcomes.values()) == 3
        again = MetricsRegistry()
        record_provenance_metrics(again, "SI-TM", spans)
        assert again.snapshot() == snapshot


# ----------------------------------------------------------------------
# The overlap property, against real runs of all six backends


def _spans_for(schedule, system):
    recorder = SpanRecorder()
    try:
        run_schedule(schedule, system, seed=0, tracer=recorder)
    except SimulationError:
        pass  # livelocked/truncated runs still leave their spans
    return recorder.spans


def _check_killers(spans, system, faults_active):
    by_uid = {span.uid: span for span in spans}
    guaranteed = KILLER_GUARANTEED[system]
    checked = 0
    for span in spans:
        if span.outcome != "abort":
            continue
        if (not faults_active and span.cause in guaranteed
                and not span.has_killer):
            raise AssertionError(
                f"{system}: {span.cause} abort of uid {span.uid} "
                f"names no killer")
        if not span.has_killer:
            continue
        checked += 1
        assert span.killer_uid != span.uid, "a span cannot kill itself"
        killer = by_uid.get(span.killer_uid)
        if killer is None:
            continue  # full recorder keeps everything; be permissive
        assert killer.thread_id == span.killer_tid
        assert killer.label == span.killer_label
        # interval overlap: the killer's attempt must have been live at
        # some point during the victim's attempt — begin clocks are
        # heap-ordered, so disjoint spans can never doom each other
        assert killer.begin_cycle <= (span.end_cycle
                                      if span.end_cycle is not None
                                      else killer.begin_cycle), \
            (system, span, killer)
        if killer.end_cycle is not None:
            assert span.begin_cycle <= killer.end_cycle, \
                (system, span, killer)
    return checked


@pytest.mark.parametrize("path", CLEAN_CORPUS,
                         ids=[p.stem for p in CLEAN_CORPUS])
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_killers_overlap_victims_on_corpus(path, system):
    doc = json.loads(path.read_text())
    schedule = doc.get("schedule", doc)
    faults_active = bool((schedule.get("config") or {}).get("faults"))
    spans = _spans_for(schedule, system)
    _check_killers(spans, system, faults_active)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200),
       index=st.integers(min_value=0, max_value=50))
def test_killers_overlap_victims_on_generated_schedules(seed, index):
    """Hypothesis property: for every backend, every conflict-caused
    abort of a randomized contended schedule names a killer (where the
    backend guarantees one) whose span overlapped the victim's."""
    schedule = generate_schedule(seed, index, threads=3, txns=2,
                                 cells=4, ops=3)
    for system in ALL_SYSTEMS:
        spans = _spans_for(schedule, system)
        _check_killers(spans, system, faults_active=False)


def test_contended_run_attributes_every_conflict_abort():
    """End-to-end: a contended run_once under SI-TM names a killer for
    every write-write abort, and the blame report charges them all."""
    from repro.harness.runner import run_once
    result = run_once("rbtree", "SI-TM", 8, 1, profile="test",
                      telemetry=True)
    spans = [Span.from_dict(row) for row in result.spans]
    ww = [s for s in spans if s.outcome == "abort"
          and s.cause == "write-write"]
    assert ww, "contended array workload should produce ww aborts"
    assert all(s.has_killer for s in ww)
    report = build_provenance(spans)
    assert report.aborts >= len(ww)
    assert report.wasted_cycles == sum(
        s.duration for s in spans if s.outcome == "abort")
