"""Telemetry through the harness: specs, executor cache, CLI, fuzzer.

Pins the executor contract for telemetry payloads: a metrics snapshot
must survive the canonical-JSON cache and the process boundary
byte-identically, and a telemetry spec must never collide with its
plain twin in the cache.
"""

import json

from repro.harness.cli import main
from repro.harness.executor import Executor
from repro.harness.experiments import trace_specs
from repro.harness.runner import run_once
from repro.harness.spec import ExperimentSpec

SPEC = dict(workload="rbtree", system="SI-TM", threads=4, seed=1,
            profile="test")


class TestSpec:
    def test_telemetry_off_hash_unchanged(self):
        """telemetry=False must not appear in the canonical dict, so
        every pre-telemetry cache key stays valid."""
        plain = ExperimentSpec(**SPEC)
        assert "telemetry" not in plain.to_dict()
        assert plain.to_dict() == ExperimentSpec.from_dict(
            plain.to_dict()).to_dict()

    def test_telemetry_distinct_cache_key(self):
        plain = ExperimentSpec(**SPEC)
        traced = ExperimentSpec(**SPEC, telemetry=True)
        assert plain.spec_hash() != traced.spec_hash()

    def test_round_trip_preserves_flag(self):
        traced = ExperimentSpec(**SPEC, telemetry=True)
        clone = ExperimentSpec.from_dict(traced.to_dict())
        assert clone.telemetry and clone == traced
        assert str(traced).endswith("/telemetry")


class TestRunOnce:
    def test_telemetry_does_not_perturb_the_simulation(self):
        bare = run_once(**SPEC)
        traced = run_once(**SPEC, telemetry=True)
        assert (bare.commits, bare.aborts, bare.makespan_cycles) == (
            traced.commits, traced.aborts, traced.makespan_cycles)
        assert bare.metrics is None and bare.spans is None

    def test_telemetry_payloads_populated(self):
        result = run_once(**SPEC, telemetry=True)
        assert result.spans and result.metrics
        assert len(result.spans) == result.commits + result.aborts
        commits = result.metrics["counters"].get(
            "txn_commits_total{system=SI-TM}")
        assert commits == result.commits

    def test_backoff_and_wait_always_surfaced(self):
        result = run_once(workload="rbtree", system="2PL", threads=4,
                          seed=1, profile="test")
        assert result.backoff_cycles >= 0
        assert result.commit_wait_cycles >= 0


class TestExecutorCache:
    def test_snapshot_byte_identical_through_cache_and_processes(self):
        spec = ExperimentSpec(**SPEC, telemetry=True)
        cold = Executor(jobs=2, cache=True).run([spec])[spec]
        warm_executor = Executor(jobs=1, cache=True)
        warm = warm_executor.run([spec])[spec]
        assert warm_executor.counters()["cache_hits"] == 1
        assert (json.dumps(cold.to_dict(), sort_keys=True)
                == json.dumps(warm.to_dict(), sort_keys=True))

    def test_plain_and_telemetry_results_kept_apart(self):
        plain = ExperimentSpec(**SPEC)
        traced = ExperimentSpec(**SPEC, telemetry=True)
        results = Executor(jobs=1, cache=True).run([plain, traced])
        assert results[plain].metrics is None
        assert results[traced].metrics is not None


class TestTraceSpecs:
    def test_figure_names_expand_to_workload_sets(self):
        specs = trace_specs("figure7", system="SI-TM", threads=4)
        assert len(specs) > 1
        assert all(s.telemetry and s.system == "SI-TM" for s in specs)

    def test_single_workload_accepted(self):
        (spec,) = trace_specs("rbtree")
        assert spec.workload == "rbtree"

    def test_unknown_experiment_rejected(self):
        import pytest

        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            trace_specs("figure99")


class TestCli:
    def test_trace_writes_perfetto_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--experiment", "figure7", "--backend",
                     "sitm", "--workloads", "rbtree", "--profile", "test",
                     "--threads", "4", "--out", str(out),
                     "--no-cache"]) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)
        assert any(e["ph"] == "X" for e in events)
        assert "Chrome trace written" in capsys.readouterr().out

    def test_metrics_command_prints_reports(self, capsys):
        assert main(["metrics", "--experiment", "rbtree", "--backend",
                     "sitm", "--profile", "test", "--threads", "4",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Abort attribution" in out
        assert "Run metrics" in out

    def test_backend_aliases_normalised(self, tmp_path):
        from repro.harness.cli import build_parser
        for alias, canon in (("sitm", "SI-TM"), ("2pl", "2PL"),
                             ("SSI", "SSI-TM"), ("logtm", "LogTM")):
            args = build_parser().parse_args(["trace", "--backend", alias])
            assert args.backend == canon


class TestFuzzSpanLog:
    def test_repro_persists_span_log_pointer(self, tmp_path, capsys):
        fuzz_dir = tmp_path / "fuzz"
        assert main(["fuzz", "--backend", "SI-TM", "--schedules", "4",
                     "--broken", "no-ww", "--no-cache",
                     "--fuzz-out", str(fuzz_dir)]) == 1
        (repro_path,) = fuzz_dir.glob("repro-*.json")
        payload = json.loads(repro_path.read_text())
        span_path = fuzz_dir / payload["span_log"]
        assert span_path.exists()
        rows = [json.loads(line)
                for line in span_path.read_text().splitlines()]
        assert rows and all(row["system"] == "SI-TM" for row in rows)

    def test_replay_re_emits_chrome_trace(self, tmp_path, capsys):
        fuzz_dir = tmp_path / "fuzz"
        main(["fuzz", "--backend", "SI-TM", "--schedules", "4",
              "--broken", "no-ww", "--no-cache",
              "--fuzz-out", str(fuzz_dir)])
        capsys.readouterr()
        (repro_path,) = fuzz_dir.glob("repro-*.json")
        trace_path = tmp_path / "replay.json"
        main(["fuzz", "--replay", str(repro_path), "--broken", "no-ww",
              "--trace-out", str(trace_path), "--no-cache"])
        doc = json.loads(trace_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "span log:" in capsys.readouterr().out
