"""Regenerate the golden store-session corpus from a live server.

Run from the repository root::

    PYTHONPATH=src python tests/corpus/store/make_corpus.py

Each JSONL file is the server's own ``record_path`` output (span-schema-
compatible session rows), so the corpus pins the real wire-to-monitor
format, not a hand-written imitation:

* ``clean_sessions.jsonl`` — a seeded Zipfian run plus a choreographed
  **write-skew** pair (A reads x/writes y, B reads y/writes x, both
  commit): legal under SI, so the checker must stay quiet;
* ``fcw_abort.jsonl`` — a same-key race where first-committer-wins
  aborts the second writer (a clean history containing a legal
  ``write-write`` abort);
* ``broken_no_fcw.jsonl`` — the same race with validation disabled:
  both commit, and the replay test asserts the checker flags
  ``first-committer-wins``.

All runs use 2 shards and fixed seeds.
"""

import asyncio
import pathlib

from repro.store.loadgen import StoreClient, run_load
from repro.store.server import StoreServer
from repro.store.session import StoreConfig

HERE = pathlib.Path(__file__).parent
SHARDS = 2


async def _race(port: int, prefix: str) -> None:
    """Two clients racing a commit on the same key."""
    a = await StoreClient.connect(port)
    b = await StoreClient.connect(port)
    try:
        await a.begin(label=f"{prefix}-a")
        await b.begin(label=f"{prefix}-b")
        await a.read("contested")
        await b.read("contested")
        await a.write("contested", "from-a")
        await a.commit()
        await b.write("contested", "from-b")
        await b.commit()
    finally:
        a.close()
        b.close()


async def _write_skew(port: int) -> None:
    """A legal-under-SI write skew: disjoint write sets, crossed reads."""
    a = await StoreClient.connect(port)
    b = await StoreClient.connect(port)
    try:
        setup = await StoreClient.connect(port)
        await setup.begin(label="skew-setup")
        await setup.write("skew-x", 1)
        await setup.write("skew-y", 1)
        await setup.commit()
        setup.close()
        await a.begin(label="skew-a")
        await b.begin(label="skew-b")
        await a.read("skew-x")
        await b.read("skew-y")
        await a.write("skew-y", 0)
        await b.write("skew-x", 0)
        await a.commit()
        await b.commit()
    finally:
        a.close()
        b.close()


async def _make(name: str, scenario, validate_fcw: bool = True) -> None:
    config = StoreConfig(shards=SHARDS, seed=42,
                         validate_fcw=validate_fcw)
    server = StoreServer(config, record_path=HERE / name)
    port = await server.start()
    try:
        await scenario(port)
    finally:
        await server.stop()
    print(f"wrote {name}")


async def main() -> None:
    async def clean(port: int) -> None:
        await run_load(port, sessions=3, txns_per_session=8, keys=16,
                       seed=42)
        await _write_skew(port)

    await _make("clean_sessions.jsonl", clean)
    await _make("fcw_abort.jsonl", lambda port: _race(port, "fcw"))
    await _make("broken_no_fcw.jsonl",
                lambda port: _race(port, "broken"), validate_fcw=False)


if __name__ == "__main__":
    asyncio.run(main())
