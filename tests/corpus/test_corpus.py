"""Regression corpus: known-tricky schedules replayed through the oracle.

Every ``schedules/*.json`` file is a schedule (or a persisted fuzz repro)
that once exposed — or is designed to exercise — a specific hazard:
write skew, the first-committer-wins race, version-cap overflow with
retry.  Each is replayed through every backend and checked against its
declared isolation level; the differential test additionally requires
all backends to agree on the final memory state, which these schedules
are constructed to make order-independent (adds commute, and the
write-skew writers converge on the same values).
"""

import json
import pathlib

import pytest

from repro.common.rng import SplitRandom, derive_seed
from repro.oracle.checker import check_history
from repro.oracle.fuzz import (_make_body, _patched_config, addonly_cells,
                               check_schedule_run, expected_counters,
                               run_schedule, schedule_violations)
from repro.oracle.history import HistoryRecorder
from repro.oracle.shrink import load_repro
from repro.sim.engine import Engine, TransactionSpec
from repro.sim.machine import Machine
from repro.tm import SYSTEMS

CORPUS_DIR = pathlib.Path(__file__).parent / "schedules"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))
#: schedules expected to replay clean — livelock_under_fault is the one
#: deliberate exception: its config injects a total abort storm with no
#: escalating retry policy, so "fails to make progress" IS its invariant
CLEAN_CORPUS = [p for p in CORPUS if p.stem != "livelock_under_fault"]
ALL_SYSTEMS = sorted(SYSTEMS)


def corpus_ids(corpus=None):
    return [path.stem for path in (CORPUS if corpus is None else corpus)]


def load(path):
    return load_repro(path)["schedule"]


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 3


@pytest.mark.parametrize("path", CLEAN_CORPUS, ids=corpus_ids(CLEAN_CORPUS))
@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_schedule_is_clean_on_backend(path, system):
    schedule = load(path)
    violations, final, history = check_schedule_run(schedule, system)
    assert violations == [], [str(v) for v in violations]
    # every add-only counter reaches its commutative total
    for cell, want in expected_counters(schedule).items():
        assert final[cell] == want
    # the recorded history re-checks clean after a serialization round trip
    assert check_history(type(history).loads(history.dumps())) == []


@pytest.mark.parametrize("path", CLEAN_CORPUS, ids=corpus_ids(CLEAN_CORPUS))
def test_final_state_identical_across_backends(path):
    schedule = load(path)
    finals = {system: run_schedule(schedule, system)[1]
              for system in ALL_SYSTEMS}
    reference = finals[ALL_SYSTEMS[0]]
    assert all(final == reference for final in finals.values()), finals


def test_write_skew_separates_si_from_ssi():
    schedule = load(CORPUS_DIR / "write_skew.json")
    _, _, si = check_schedule_run(schedule, "SI-TM")
    _, _, ssi = check_schedule_run(schedule, "SSI-TM")
    # plain SI admits the skew: both doctors commit, no aborts
    assert len(si.committed()) == 2 and not si.aborts()
    # SSI breaks the dangerous structure by aborting one attempt
    assert any(rec.abort_cause == "dangerous-structure"
               for rec in ssi.aborts())


def test_overflow_retry_exercises_version_cap():
    schedule = load(CORPUS_DIR / "overflow_retry.json")
    _, _, history = check_schedule_run(schedule, "SI-TM")
    causes = {rec.abort_cause for rec in history.aborts()}
    assert "version-overflow" in causes, causes
    assert len(history.committed()) == 7  # every transaction retries in


def test_fcw_race_catches_broken_sitm():
    schedule = load(CORPUS_DIR / "fcw_race.json")
    rules = {v.rule for v in schedule_violations(schedule, ["SI-TM"],
                                                 broken="no-ww")}
    assert "first-committer-wins" in rules and "lost-update" in rules


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_escalation_terminates_under_total_abort_storm(system):
    # a 1.0-rate spurious-abort storm means no commit attempt can ever
    # succeed outside the golden token; the escalating retry policy in
    # the schedule's config is the ONLY reason this terminates
    schedule = load(CORPUS_DIR / "escalation_terminates.json")
    violations, final, history = check_schedule_run(schedule, system)
    assert violations == [], [str(v) for v in violations]
    assert len(history.committed()) == 3
    for cell, want in expected_counters(schedule).items():
        assert final[cell] == want


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_livelock_under_fault_without_escalation(system):
    # same storm, but no retry policy: every backend must fail to make
    # progress, surfaced as a deterministic no-progress violation (the
    # config's tm.max_retries keeps the demonstration fast)
    schedule = load(CORPUS_DIR / "livelock_under_fault.json")
    violations, _, history = check_schedule_run(schedule, system)
    assert {v.rule for v in violations} == {"no-progress"}, violations
    assert history is None or not history.committed()


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_capacity_overflow_aborts_carry_declared_cause(system):
    # the squeeze caps every write set at one line, so the two-line
    # writers must abort with the *declared* capacity cause on every
    # backend — and still reach the commutative totals, because golden-
    # token escalation suppresses capacity bounds (software fallback)
    schedule = load(CORPUS_DIR / "capacity_overflow.json")
    violations, final, history = check_schedule_run(schedule, system)
    assert violations == [], [str(v) for v in violations]
    causes = {rec.abort_cause for rec in history.aborts()}
    assert "write-capacity" in causes, causes
    for cell, want in expected_counters(schedule).items():
        assert final[cell] == want


def _run_keeping_tm(schedule, system):
    """Mirror ``run_schedule`` but return the backend for counter checks."""
    config = _patched_config(schedule.get("config"))
    machine = Machine(config)
    stride = machine.address_map.words_per_line
    initial = list(schedule["initial"])
    base = machine.mvmalloc(max(1, len(initial)) * stride)
    for cell, value in enumerate(initial):
        machine.plain_store(base + cell * stride, value)
    tm = SYSTEMS[system](
        machine, SplitRandom(derive_seed(0, "fuzz-run",
                                         schedule.get("name", ""), system)))
    recorder = HistoryRecorder.for_system(
        tm, initial={base + cell * stride: value
                     for cell, value in enumerate(initial)})
    programs = [
        [TransactionSpec(_make_body(txn["ops"], base, stride, txn["label"]),
                         txn["label"])
         for txn in thread]
        for thread in schedule["threads"]]
    engine = Engine(tm, programs, tracer=recorder)
    engine.run(max_steps=100_000)
    final = [machine.plain_load(base + cell * stride)
             for cell in range(len(initial))]
    return tm, recorder.history, final


def test_hybrid_fallback_reaches_the_serial_path():
    # one hardware attempt only: the first abort sends a thread to the
    # serialized global-lock fallback, which must commit (the fallback
    # is unabortable) and still replay oracle-clean
    schedule = load(CORPUS_DIR / "hybrid_fallback.json")
    tm, history, final = _run_keeping_tm(schedule, "HybridHTM")
    assert tm.hw_attempts == 1
    assert tm.fallback_entries > 0
    assert tm.fallback_commits > 0
    assert check_history(history) == []
    for cell, want in expected_counters(schedule).items():
        assert final[cell] == want


def test_corpus_files_are_plain_schedules():
    # corpus entries stay minimal: a schedule document, not a full repro
    for path in CORPUS:
        payload = json.loads(path.read_text())
        assert "threads" in payload and "initial" in payload
