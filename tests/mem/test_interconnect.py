"""Interconnect cost-model tests."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.interconnect import Interconnect


class TestTopologies:
    def test_bus_broadcast_scales_with_cores(self):
        small = Interconnect(8, "bus").broadcast_cost()
        large = Interconnect(32, "bus").broadcast_cost()
        assert large > small

    def test_mesh_broadcast_scales_sublinearly(self):
        costs = {cores: Interconnect(cores, "mesh").broadcast_cost()
                 for cores in (4, 16, 64)}
        assert costs[16] > costs[4]
        assert costs[64] > costs[16]
        # sublinear: 16x cores does not cost 16x cycles
        assert costs[64] < 16 * costs[4]

    def test_ideal_constant(self):
        assert Interconnect(4, "ideal").broadcast_cost() == \
            Interconnect(64, "ideal").broadcast_cost()

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            Interconnect(8, "torus")

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            Interconnect(0, "mesh")


class TestMulticast:
    def test_zero_recipients_free(self):
        assert Interconnect(16, "mesh").multicast_cost(0) == 0

    def test_bus_multicast_per_recipient(self):
        fabric = Interconnect(16, "bus")
        assert fabric.multicast_cost(8) > fabric.multicast_cost(2)

    def test_mesh_multicast_bounded_by_diameter_plus_fanout(self):
        fabric = Interconnect(16, "mesh")
        assert fabric.multicast_cost(1) < fabric.multicast_cost(15)

    def test_point_to_point_cheaper_than_broadcast(self):
        for topology in ("bus", "mesh"):
            fabric = Interconnect(32, topology)
            assert fabric.point_to_point_cost() < fabric.broadcast_cost()


class TestCounters:
    def test_message_counters(self):
        fabric = Interconnect(8, "mesh")
        fabric.broadcast_cost()
        fabric.broadcast_cost()
        fabric.multicast_cost(3)
        stats = fabric.stats()
        assert stats["broadcasts"] == 2
        assert stats["multicasts"] == 1


class TestSystemIntegration:
    def test_eager_broadcast_cost_grows_with_cores(self):
        """2PL's per-access coherence cost rises with the core count
        while SI-TM's does not — the scalability asymmetry of Figure 8."""
        from repro.common.config import MachineConfig, SimConfig
        from repro.common.rng import SplitRandom
        from repro.sim.machine import Machine
        from repro.tm import SnapshotIsolationTM, TwoPhaseLockingTM

        def read_cost(system_cls, cores):
            machine = Machine(SimConfig(machine=MachineConfig(cores=cores)))
            addr = machine.mvmalloc(1)
            machine.plain_store(addr, 1)
            tm = system_cls(machine, SplitRandom(1))
            txn, _ = tm.begin(0, "t", 0)
            # warm the caches so only the broadcast differs
            tm.read(txn, addr)
            tm.abort(txn, __import__("repro.common.errors",
                                     fromlist=["AbortCause"]
                                     ).AbortCause.EXPLICIT)
            txn, _ = tm.begin(0, "t", 0)
            _, cycles = tm.read(txn, addr)
            return cycles

        assert read_cost(TwoPhaseLockingTM, 32) > \
            read_cost(TwoPhaseLockingTM, 4)
        assert read_cost(SnapshotIsolationTM, 32) == \
            read_cost(SnapshotIsolationTM, 4)
