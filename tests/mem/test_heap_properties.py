"""Allocator property tests: no live allocation ever overlaps another."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address import AddressMap
from repro.mem.heap import BumpAllocator, Heap

ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 24)),
        st.tuples(st.just("free"), st.integers(0, 50)),
    ),
    min_size=1, max_size=120)


@given(ops=ops)
@settings(max_examples=80, deadline=None)
def test_live_allocations_never_overlap(ops):
    allocator = BumpAllocator(8, 1_000_000, AddressMap(8))
    live = {}  # addr -> words
    order = []
    for op, value in ops:
        if op == "alloc":
            addr = allocator.alloc(value)
            assert addr not in live
            live[addr] = value
            order.append(addr)
        elif order:
            victim = order.pop(value % len(order))
            allocator.free(victim)
            del live[victim]
    spans = sorted((addr, addr + words) for addr, words in live.items())
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b  # disjoint live spans
    assert allocator.allocated_words() == sum(live.values())


@given(ops=ops)
@settings(max_examples=60, deadline=None)
def test_heap_regions_never_mix(ops):
    heap = Heap()
    amap = heap.address_map
    for op, value in ops:
        if op == "alloc":
            conventional = heap.malloc(value)
            versioned = heap.mvmalloc(value)
            assert not amap.is_mvm(conventional)
            assert amap.is_mvm(versioned)


@given(sizes=st.lists(st.integers(1, 9), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_line_alignment_keeps_allocations_on_distinct_lines(sizes):
    """Line-aligned allocations of <= 8 words never share a line."""
    heap = Heap()
    amap = heap.address_map
    lines = []
    for words in sizes:
        addr = heap.mvmalloc(min(words, 8))
        lines.append(amap.line_of(addr))
    assert len(lines) == len(set(lines))
