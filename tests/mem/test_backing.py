"""Backing-store tests."""

from repro.mem.backing import BackingStore


class TestBackingStore:
    def test_unwritten_reads_zero(self):
        assert BackingStore().load(12345) == 0

    def test_store_load_roundtrip(self):
        store = BackingStore()
        store.store(7, 42)
        assert store.load(7) == 42

    def test_overwrite(self):
        store = BackingStore()
        store.store(7, 1)
        store.store(7, 2)
        assert store.load(7) == 2

    def test_line_roundtrip(self):
        store = BackingStore()
        words = range(16, 24)
        store.store_line(words, [10, 11, 12, 13, 14, 15, 16, 17])
        assert store.load_line(words) == (10, 11, 12, 13, 14, 15, 16, 17)

    def test_partial_line_reads_zeros(self):
        store = BackingStore()
        store.store(17, 5)
        assert store.load_line(range(16, 24)) == (0, 5, 0, 0, 0, 0, 0, 0)

    def test_len_counts_stored_words(self):
        store = BackingStore()
        store.store(1, 1)
        store.store(2, 2)
        store.store(1, 3)
        assert len(store) == 2

    def test_items(self):
        store = BackingStore()
        store.store(5, 50)
        assert dict(store.items()) == {5: 50}
