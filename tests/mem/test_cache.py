"""Cache-model tests: LRU, eviction, hierarchy timing, coherence hooks."""

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.mem.cache import CacheHierarchy, SetAssociativeCache


def tiny_cache(ways=2, sets=2):
    return SetAssociativeCache(CacheConfig(
        size_bytes=ways * sets * 64, associativity=ways, latency_cycles=1))


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.lookup(0)
        cache.fill(0)
        assert cache.lookup(0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)          # 1 becomes MRU
        victim = cache.fill(3)
        assert victim == 2

    def test_eviction_counter(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(1)
        cache.fill(2)
        assert cache.evictions == 1

    def test_set_indexing_isolates_sets(self):
        cache = tiny_cache(ways=1, sets=2)
        cache.fill(0)  # set 0
        cache.fill(1)  # set 1
        assert cache.contains(0)
        assert cache.contains(1)

    def test_refill_same_line_no_eviction(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(1)
        assert cache.fill(1) is None
        assert cache.evictions == 0

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(4)
        assert cache.invalidate(4)
        assert not cache.invalidate(4)
        assert not cache.contains(4)

    def test_contains_does_not_touch_counters(self):
        cache = tiny_cache()
        cache.contains(9)
        assert cache.misses == 0

    def test_flush(self):
        cache = tiny_cache()
        cache.fill(1)
        cache.fill(2)
        cache.flush()
        assert cache.resident_lines == 0


class TestCacheHierarchy:
    @pytest.fixture
    def hierarchy(self):
        return CacheHierarchy(MachineConfig(cores=2))

    def test_cold_access_costs_memory_latency(self, hierarchy):
        assert hierarchy.access(0, 100) == 100

    def test_warm_access_costs_l1_latency(self, hierarchy):
        hierarchy.access(0, 100)
        assert hierarchy.access(0, 100) == 4

    def test_cross_core_hit_in_l3(self, hierarchy):
        hierarchy.access(0, 100)
        assert hierarchy.access(1, 100) == 30

    def test_invalidate_everywhere_spares_exception(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.access(1, 100)
        hierarchy.invalidate_everywhere(100, except_core=0)
        assert hierarchy.cores[0].l1.contains(100)
        assert not hierarchy.cores[1].l1.contains(100)

    def test_invalidated_core_refetches_from_l3(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.invalidate_core(0, 100)
        assert hierarchy.access(0, 100) == 30

    def test_shared_access_bypasses_private_caches(self, hierarchy):
        assert hierarchy.shared_access(200) == 100  # cold -> memory
        assert hierarchy.shared_access(200) == 30   # warm -> L3
        assert not hierarchy.cores[0].l1.contains(200)

    def test_level_counters(self, hierarchy):
        hierarchy.access(0, 1)
        hierarchy.access(0, 1)
        counts = hierarchy.level_counts
        assert counts["MEM"] == 1
        assert counts["L1"] == 1

    def test_stats_shape(self, hierarchy):
        hierarchy.access(0, 5)
        stats = hierarchy.stats()
        assert "levels" in stats and "l3" in stats
