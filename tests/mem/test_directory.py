"""Directory-style sharer tracking tests."""

import pytest

from repro.common.config import MachineConfig
from repro.mem.cache import CacheHierarchy


@pytest.fixture
def hierarchy():
    return CacheHierarchy(MachineConfig(cores=4))


class TestSharerTracking:
    def test_accessors_become_sharers(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.access(2, 100)
        assert hierarchy.sharer_count(100) == 2

    def test_except_core_excluded(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.access(1, 100)
        assert hierarchy.sharer_count(100, except_core=0) == 1

    def test_unknown_line_has_no_sharers(self, hierarchy):
        assert hierarchy.sharer_count(999) == 0

    def test_invalidation_clears_sharers(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.access(1, 100)
        sent = hierarchy.invalidate_everywhere(100)
        assert sent == 2
        assert hierarchy.sharer_count(100) == 0
        assert hierarchy.invalidations_sent == 2

    def test_invalidation_spares_exception_and_keeps_its_bit(self, hierarchy):
        hierarchy.access(0, 100)
        hierarchy.access(1, 100)
        sent = hierarchy.invalidate_everywhere(100, except_core=1)
        assert sent == 1
        assert hierarchy.sharer_count(100) == 1
        assert hierarchy.cores[1].l1.contains(100)
        assert not hierarchy.cores[0].l1.contains(100)

    def test_no_sharers_no_messages(self, hierarchy):
        assert hierarchy.invalidate_everywhere(100) == 0


class TestTrackedAccess:
    def test_victim_reported_on_l2_pressure(self):
        # a tiny L2 so eviction happens quickly
        from repro.common.config import CacheConfig

        machine = MachineConfig(
            cores=1,
            l1d=CacheConfig(size_bytes=2 * 64, associativity=1,
                            latency_cycles=4),
            l2=CacheConfig(size_bytes=2 * 64, associativity=1,
                           latency_cycles=8))
        hierarchy = CacheHierarchy(machine)
        victims = []
        # same set (set count 2): lines 0, 2, 4 collide in set 0
        for line in (0, 2, 4):
            _, victim = hierarchy.access_tracked(0, line)
            if victim is not None:
                victims.append(victim)
        assert victims  # pressure produced at least one L2 victim

    def test_no_victim_on_hit(self, hierarchy):
        hierarchy.access(0, 7)
        _, victim = hierarchy.access_tracked(0, 7)
        assert victim is None
