"""Heap allocator tests: two regions, alignment, free-list reuse."""

import pytest

from repro.common.errors import AllocationError
from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mem.heap import BumpAllocator, Heap


class TestBumpAllocator:
    def _alloc(self):
        return BumpAllocator(8, 10_000, AddressMap(8))

    def test_disjoint_allocations(self):
        alloc = self._alloc()
        a = alloc.alloc(4)
        b = alloc.alloc(4)
        assert set(range(a, a + 4)).isdisjoint(range(b, b + 4))

    def test_line_alignment(self):
        alloc = self._alloc()
        for _ in range(5):
            assert alloc.alloc(3) % 8 == 0

    def test_unaligned_packing(self):
        alloc = self._alloc()
        a = alloc.alloc(3, line_aligned=False)
        b = alloc.alloc(3, line_aligned=False)
        assert b == a + 3

    def test_free_reuse(self):
        alloc = self._alloc()
        a = alloc.alloc(4)
        alloc.free(a)
        assert alloc.alloc(4) == a

    def test_free_wrong_address_rejected(self):
        alloc = self._alloc()
        alloc.alloc(4)
        with pytest.raises(AllocationError):
            alloc.free(99999)

    def test_double_free_rejected(self):
        alloc = self._alloc()
        a = alloc.alloc(4)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_zero_words_rejected(self):
        with pytest.raises(AllocationError):
            self._alloc().alloc(0)

    def test_exhaustion(self):
        alloc = BumpAllocator(8, 32, AddressMap(8))
        alloc.alloc(8)
        alloc.alloc(8)
        with pytest.raises(AllocationError):
            alloc.alloc(16)

    def test_allocated_words_accounting(self):
        alloc = self._alloc()
        a = alloc.alloc(4)
        alloc.alloc(6)
        assert alloc.allocated_words() == 10
        alloc.free(a)
        assert alloc.allocated_words() == 6

    def test_empty_region_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(100, 100, AddressMap(8))


class TestHeap:
    def test_malloc_in_conventional_region(self):
        addr = Heap().malloc(4)
        assert addr < MVM_REGION_BASE

    def test_mvmalloc_in_mvm_region(self):
        addr = Heap().mvmalloc(4)
        assert addr >= MVM_REGION_BASE

    def test_address_zero_never_allocated(self):
        heap = Heap()
        for _ in range(10):
            assert heap.malloc(1, line_aligned=False) != 0

    def test_free_routes_by_region(self):
        heap = Heap()
        a = heap.malloc(4)
        b = heap.mvmalloc(4)
        heap.free(a)
        heap.free(b)
        assert heap.conventional_allocated_words() == 0
        assert heap.mvm_allocated_words() == 0

    def test_region_accounting_separate(self):
        heap = Heap()
        heap.malloc(4)
        heap.mvmalloc(6)
        assert heap.conventional_allocated_words() == 4
        assert heap.mvm_allocated_words() == 6
