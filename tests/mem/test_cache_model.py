"""Property-based check of the cache against a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.cache import SetAssociativeCache


class ReferenceLRU:
    """Dict-of-OrderedDict reference implementation."""

    def __init__(self, sets: int, ways: int):
        self.sets = {i: OrderedDict() for i in range(sets)}
        self.num_sets = sets
        self.ways = ways

    def access(self, line: int) -> bool:
        entries = self.sets[line % self.num_sets]
        hit = line in entries
        if hit:
            entries.move_to_end(line)
        else:
            if len(entries) >= self.ways:
                entries.popitem(last=False)
            entries[line] = None
        return hit

    def invalidate(self, line: int) -> None:
        self.sets[line % self.num_sets].pop(line, None)

    def contains(self, line: int) -> bool:
        return line in self.sets[line % self.num_sets]


@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(0, 63)),
        st.tuples(st.just("invalidate"), st.integers(0, 63))),
    max_size=300))
@settings(max_examples=80, deadline=None)
def test_cache_matches_reference_lru(ops):
    """Hit/miss decisions and residency match the reference for any
    access/invalidate sequence."""
    ways, sets = 2, 4
    cache = SetAssociativeCache(CacheConfig(
        size_bytes=ways * sets * 64, associativity=ways, latency_cycles=1))
    reference = ReferenceLRU(sets, ways)
    for op, line in ops:
        if op == "access":
            expected_hit = reference.access(line)
            actual_hit = cache.lookup(line)
            if not actual_hit:
                cache.fill(line)
            assert actual_hit == expected_hit, (op, line)
        else:
            reference.invalidate(line)
            cache.invalidate(line)
    for line in range(64):
        assert cache.contains(line) == reference.contains(line), line
