"""Address-map arithmetic tests."""

from repro.mem.address import MVM_REGION_BASE, AddressMap


class TestLineMath:
    def test_line_of(self):
        amap = AddressMap(words_per_line=8)
        assert amap.line_of(0) == 0
        assert amap.line_of(7) == 0
        assert amap.line_of(8) == 1

    def test_word_in_line(self):
        amap = AddressMap(8)
        assert amap.word_in_line(13) == 5

    def test_line_base_roundtrip(self):
        amap = AddressMap(8)
        for addr in (0, 5, 8, 123, MVM_REGION_BASE + 17):
            line = amap.line_of(addr)
            assert amap.line_base(line) <= addr
            assert addr in amap.words_of_line(line)

    def test_words_of_line_length(self):
        amap = AddressMap(8)
        assert len(list(amap.words_of_line(3))) == 8

    def test_custom_words_per_line(self):
        amap = AddressMap(words_per_line=4)
        assert amap.line_of(4) == 1
        assert len(list(amap.words_of_line(0))) == 4


class TestRegions:
    def test_conventional_region(self):
        amap = AddressMap(8)
        assert not amap.is_mvm(0)
        assert not amap.is_mvm(MVM_REGION_BASE - 1)

    def test_mvm_region(self):
        amap = AddressMap(8)
        assert amap.is_mvm(MVM_REGION_BASE)
        assert amap.is_mvm(MVM_REGION_BASE + 12345)

    def test_mvm_line(self):
        amap = AddressMap(8)
        assert amap.is_mvm_line(amap.line_of(MVM_REGION_BASE))
        assert not amap.is_mvm_line(0)
