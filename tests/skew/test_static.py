"""Static footprint analyzer tests (the Dias-style alternative, §5.1)."""

import pytest

from repro.common.errors import SkewToolError
from repro.skew.static import FootprintAnalyzer
from repro.structures import TxLinkedList
from repro.tm.ops import Compute, Read, Write


class TestFootprints:
    def test_read_only_operation(self, machine):
        addr = machine.mvmalloc(1)

        def probe():
            yield Read(addr, site="probe")

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("probe", probe)
        report = analyzer.analyse()
        footprint = report.footprints[0]
        assert footprint.is_read_only
        assert footprint.reads == {addr}

    def test_control_flow_follows_committed_state(self, machine):
        flag = machine.mvmalloc(1)
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)
        machine.plain_store(flag, 1)

        def branchy():
            value = yield Read(flag, site="flag")
            if value:
                yield Write(a, 1, site="then")
            else:
                yield Write(b, 1, site="else")

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("branchy", branchy)
        report = analyzer.analyse()
        assert report.footprints[0].writes == {a}

    def test_writes_not_applied_to_state(self, machine):
        addr = machine.mvmalloc(1)

        def writer():
            yield Write(addr, 99)

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("w", writer)
        analyzer.analyse()
        assert machine.plain_load(addr) == 0

    def test_own_writes_visible_within_operation(self, machine):
        addr = machine.mvmalloc(1)
        out = machine.mvmalloc(1)

        def rmw():
            yield Write(addr, 5)
            value = yield Read(addr)
            yield Write(out, value)

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("rmw", rmw)
        report = analyzer.analyse()
        # the shadowed read returned 5, so both writes are in the footprint
        assert report.footprints[0].writes == {addr, out}


class TestSkewDetection:
    def test_classic_crossed_pair(self, machine):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def t1():
            yield Read(a, site="t1.r")
            yield Compute(1)
            yield Write(b, 1)

        def t2():
            yield Read(b, site="t2.r")
            yield Compute(1)
            yield Write(a, 1)

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("t1", t1)
        analyzer.add_operation("t2", t2)
        report = analyzer.analyse()
        assert len(report.candidates) == 1
        candidate = report.candidates[0]
        assert candidate.ops == ("t1", "t2")
        assert candidate.read_sites == {"t1.r", "t2.r"}
        assert report.promotion_sites() == {"t1.r", "t2.r"}

    def test_overlapping_writes_excluded(self, machine):
        a = machine.mvmalloc(1)

        def rmw():
            value = yield Read(a)
            yield Write(a, value + 1)

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("x", rmw)
        analyzer.add_operation("y", rmw)
        assert analyzer.analyse().clean

    def test_read_only_pairs_excluded(self, machine):
        a = machine.mvmalloc(1)

        def reader():
            yield Read(a)

        def writer():
            yield Read(a)
            yield Write(a + 8, 1)

        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("r", reader)
        analyzer.add_operation("w", writer)
        assert analyzer.analyse().clean

    def test_finds_listing2_from_one_state(self, machine):
        """The list anomaly falls out of a single populated list."""
        lst = TxLinkedList(machine)  # unsafe variant
        lst.populate([1, 2, 3, 4])
        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("remove(2)", lambda: lst.remove(2))
        analyzer.add_operation("remove(3)", lambda: lst.remove(3))
        report = analyzer.analyse()
        assert not report.clean
        assert any(site.startswith("list.remove")
                   for site in report.promotion_sites())

    def test_fixed_list_clean(self, machine):
        lst = TxLinkedList(machine, skew_safe=True)
        lst.populate([1, 2, 3, 4])
        analyzer = FootprintAnalyzer(machine)
        analyzer.add_operation("remove(2)", lambda: lst.remove(2))
        analyzer.add_operation("remove(3)", lambda: lst.remove(3))
        assert analyzer.analyse().clean

    def test_no_operations_rejected(self, machine):
        with pytest.raises(SkewToolError):
            FootprintAnalyzer(machine).analyse()
