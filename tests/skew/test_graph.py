"""Dependency-graph analysis tests."""

from repro.sim.machine import Machine
from repro.skew.graph import build_graph, find_write_skews
from repro.skew.trace import TraceRecorder
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def analyse(machine, programs, seed=7):
    recorder = TraceRecorder()
    run_program(machine, "SI-TM", programs, seed=seed, tracer=recorder)
    return find_write_skews(recorder)


class TestWriteSkewDetection:
    def test_classic_two_transaction_skew(self, machine):
        """Crossed read/write sets form a 2-cycle."""
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def t1():
            yield Read(a, site="t1.read")
            yield Compute(50)
            yield Write(b, 1, site="t1.write")

        def t2():
            yield Read(b, site="t2.read")
            yield Compute(50)
            yield Write(a, 1, site="t2.write")

        report = analyse(machine, [[spec(t1, "t1")], [spec(t2, "t2")]])
        assert not report.clean
        sites = report.all_read_sites()
        assert "t1.read" in sites and "t2.read" in sites

    def test_one_directional_conflict_clean(self, machine):
        a = machine.mvmalloc(1)

        def reader():
            yield Read(a, site="r")
            yield Compute(50)

        def writer():
            yield Compute(10)
            yield Write(a, 1, site="w")

        report = analyse(machine, [[spec(reader)], [spec(writer)]])
        assert report.clean

    def test_sequential_crossed_sets_clean(self, machine):
        """The same access pattern without overlap is not a skew."""
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def t1():
            yield Read(a, site="t1.read")
            yield Write(b, 1, site="t1.write")

        def t2():
            yield Read(b, site="t2.read")
            yield Write(a, 1, site="t2.write")

        # both on ONE thread: they can never overlap
        report = analyse(machine, [[spec(t1), spec(t2)]])
        assert report.clean

    def test_write_write_pairs_excluded(self, machine):
        """WW conflicts are SI's own business, not skew edges: a txn that
        also writes what it read of the other is handled by validation."""
        a = machine.mvmalloc(1)

        def rmw():
            value = yield Read(a, site="rmw.read")
            yield Compute(30)
            yield Write(a, value + 1, site="rmw.write")

        report = analyse(machine, [[spec(rmw)], [spec(rmw)]])
        assert report.clean  # one aborts; committed pair not concurrent


class TestGraphShape:
    def test_nodes_are_committed_only(self, machine):
        a = machine.mvmalloc(1)

        def rmw():
            value = yield Read(a)
            yield Compute(30)
            yield Write(a, value + 1)

        recorder = TraceRecorder()
        run_program(machine, "SI-TM",
                    [[spec(rmw) for _ in range(3)],
                     [spec(rmw) for _ in range(3)]], tracer=recorder)
        graph = build_graph(recorder)
        assert graph.number_of_nodes() == 6

    def test_witness_carries_labels_and_addrs(self, machine):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def t1():
            yield Read(a, site="s1")
            yield Compute(50)
            yield Write(b, 1)

        def t2():
            yield Read(b, site="s2")
            yield Compute(50)
            yield Write(a, 1)

        report = analyse(machine, [[spec(t1, "alpha")], [spec(t2, "beta")]])
        witness = report.witnesses[0]
        assert set(witness.labels) == {"alpha", "beta"}
        assert witness.addrs == {a, b}
