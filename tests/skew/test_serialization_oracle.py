"""Serialization-graph oracle tests.

The strongest end-to-end correctness statement in the suite: for random
contended workloads, every system that claims (conflict-)serializability
must produce an acyclic committed-history conflict graph, while plain SI
may produce cycles — and when it does, every cycle must contain two
consecutive rw antidependencies (the classic SI theorem).
"""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.skew.serialization import (
    cycles,
    is_conflict_serializable,
    precedence_graph,
    si_anomaly_cycles,
)
from repro.skew.trace import TraceRecorder
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec

SERIALIZABLE = [("2PL", "latest"), ("SONTM", "latest"),
                ("SSI-TM", "snapshot"), ("LogTM", "latest")]


def contended_programs(machine, rng, threads=4, txns=20, cells=6):
    """Transfers + scans over few cells: dense conflicts of every kind."""
    base = machine.mvmalloc(cells * 8)
    for i in range(cells):
        machine.plain_store(base + i * 8, 10)

    def transfer(src, dst):
        def body():
            a = yield Read(base + src * 8)
            yield Compute(2)
            yield Write(base + src * 8, a - 1)
            b = yield Read(base + dst * 8)
            yield Write(base + dst * 8, b + 1)
        return body

    def scan():
        total = 0
        for i in range(cells):
            v = yield Read(base + i * 8)
            total += v
        return total

    programs = []
    for tid in range(threads):
        thread_rng = rng.split(tid)
        specs = []
        for _ in range(txns):
            if thread_rng.random() < 0.3:
                specs.append(spec(scan, "scan"))
            else:
                src, dst = thread_rng.distinct(2, 0, cells)
                specs.append(spec(transfer(src, dst), "transfer"))
        programs.append(specs)
    return programs


def record(system, seed):
    machine = Machine()
    rng = SplitRandom(seed)
    programs = contended_programs(machine, rng)
    recorder = TraceRecorder()
    run_program(machine, system, programs, seed=seed, tracer=recorder)
    return recorder


class TestSerializableSystems:
    @pytest.mark.parametrize("system,mode", SERIALIZABLE)
    def test_committed_histories_acyclic(self, system, mode):
        for seed in range(4):
            trace = record(system, seed)
            assert is_conflict_serializable(trace, read_mode=mode), \
                (system, seed, cycles(trace, mode))


class TestSnapshotIsolation:
    def test_si_transfer_history_acyclic(self):
        """Transfers read-and-write both accounts: SI detects every
        harmful overlap as write-write, so these histories serialize."""
        for seed in range(4):
            trace = record("SI-TM", seed)
            # any cycle that does appear must be a legal SI anomaly shape
            si_anomaly_cycles(trace)  # raises on theorem violation

    def test_si_write_skew_cycle_detected_by_oracle(self):
        """The Listing 1 anomaly shows up as a conflict-graph cycle."""
        machine = Machine()
        checking = machine.mvmalloc(1)
        saving = machine.mvmalloc(1)
        machine.plain_store(checking, 60)
        machine.plain_store(saving, 60)

        def withdraw(from_checking):
            def body():
                c = yield Read(checking)
                s = yield Read(saving)
                yield Compute(10)
                if c + s > 100:
                    if from_checking:
                        yield Write(checking, c - 100)
                    else:
                        yield Write(saving, s - 100)
            return body

        anomaly_seen = False
        for seed in range(8):
            recorder = TraceRecorder()
            run_program(machine, "SI-TM",
                        [[spec(withdraw(True), "w1")],
                         [spec(withdraw(False), "w2")]],
                        seed=seed, tracer=recorder)
            machine.plain_store(checking, 60)
            machine.plain_store(saving, 60)
            found = si_anomaly_cycles(recorder)
            if found:
                anomaly_seen = True
        assert anomaly_seen


class TestGraphMechanics:
    def test_wr_edge_direction(self, machine):
        addr = machine.mvmalloc(1)

        def writer():
            yield Write(addr, 5)

        def reader():
            yield Read(addr)

        recorder = TraceRecorder()
        run_program(machine, "2PL", [[spec(writer, "w"), spec(reader, "r")]],
                    tracer=recorder)
        graph = precedence_graph(recorder, "latest")
        writer_txn, reader_txn = recorder.committed_transactions()
        assert graph.has_edge(writer_txn.uid, reader_txn.uid)
        assert graph[writer_txn.uid][reader_txn.uid]["kind"] == "wr"

    def test_ww_chain(self, machine):
        addr = machine.mvmalloc(1)

        def writer(value):
            def body():
                yield Write(addr, value)
            return body

        recorder = TraceRecorder()
        run_program(machine, "2PL",
                    [[spec(writer(1), "a"), spec(writer(2), "b")]],
                    tracer=recorder)
        graph = precedence_graph(recorder, "latest")
        first, second = recorder.committed_transactions()
        assert graph.has_edge(first.uid, second.uid)

    def test_own_writes_no_self_edges(self, machine):
        addr = machine.mvmalloc(1)

        def rmw():
            yield Write(addr, 1)
            value = yield Read(addr)
            yield Write(addr, value + 1)

        recorder = TraceRecorder()
        run_program(machine, "SI-TM", [[spec(rmw, "rmw")]],
                    tracer=recorder)
        graph = precedence_graph(recorder, "snapshot")
        assert not any(a == b for a, b in graph.edges)

    def test_unknown_mode_rejected(self, machine):
        from repro.common.errors import SkewToolError

        with pytest.raises(SkewToolError):
            precedence_graph(TraceRecorder(), read_mode="psychic")
