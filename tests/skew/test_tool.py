"""Write-skew tool end-to-end tests (section 5.1's workflow).

The tool must: find the Listing 1 (withdraw) and Listing 2 (linked list)
anomalies under SI, attribute them to read sites, auto-fix them via read
promotion, and verify the fixed program is clean — reproducing the paper's
"corrected applications never showed inconsistent behaviour".
"""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.engine import TransactionSpec
from repro.sim.machine import Machine
from repro.skew.tool import Scenario, ToolResult, WriteSkewTool
from repro.structures import TxLinkedList
from repro.tm.ops import Compute, Read, Write
from repro.common.errors import SkewToolError


def withdraw_scenario(rng):
    """Listing 1: concurrent withdraws from different accounts."""
    machine = Machine()
    checking = machine.mvmalloc(1)
    saving = machine.mvmalloc(1)
    machine.plain_store(checking, 60)
    machine.plain_store(saving, 60)

    def withdraw(from_checking):
        def body():
            c = yield Read(checking, site="withdraw:check-checking")
            s = yield Read(saving, site="withdraw:check-saving")
            yield Compute(20)
            if c + s > 100:
                if from_checking:
                    yield Write(checking, c - 100, site="withdraw:debit")
                else:
                    yield Write(saving, s - 100, site="withdraw:debit")
        return body

    programs = [[TransactionSpec(withdraw(True), "withdraw")],
                [TransactionSpec(withdraw(False), "withdraw")]]

    def check():
        return (machine.plain_load(checking)
                + machine.plain_load(saving)) >= 0

    return Scenario(machine, programs, check)


def list_scenario(rng):
    """Listing 2: concurrent adjacent removes."""
    machine = Machine()
    lst = TxLinkedList(machine)  # unsafe variant
    lst.populate([1, 2, 3, 4, 5, 6])
    pairs = [(2, 3), (4, 5)]
    programs = []
    for left, right in pairs:
        programs.append([TransactionSpec(
            lambda k=left: lst.remove(k), "list.remove")])
        programs.append([TransactionSpec(
            lambda k=right: lst.remove(k), "list.remove")])

    def check():
        return lst.to_list() == [1, 6]

    return Scenario(machine, programs, check)


class TestWithdrawAnomaly:
    def test_tool_finds_listing1_skew(self):
        tool = WriteSkewTool(withdraw_scenario, schedules=8)
        result = tool.analyse()
        assert not result.clean
        assert "withdraw" in result.labels()

    def test_inconsistent_schedules_observed(self):
        tool = WriteSkewTool(withdraw_scenario, schedules=8)
        result = tool.analyse()
        assert result.inconsistent_schedules > 0

    def test_fix_promotes_the_checked_reads(self):
        tool = WriteSkewTool(withdraw_scenario, schedules=8)
        promoted = tool.fix()
        assert promoted & {"withdraw:check-checking",
                           "withdraw:check-saving"}

    def test_fixed_program_clean_and_consistent(self):
        tool = WriteSkewTool(withdraw_scenario, schedules=8)
        promoted = tool.fix()
        verified = tool.verify_fix(promoted)
        assert verified.clean
        assert verified.inconsistent_schedules == 0


class TestListAnomaly:
    def test_tool_finds_listing2_skew(self):
        tool = WriteSkewTool(list_scenario, schedules=8)
        result = tool.analyse()
        assert not result.clean
        assert "list.remove" in result.labels()

    def test_fix_attributes_list_sites(self):
        tool = WriteSkewTool(list_scenario, schedules=8)
        promoted = tool.fix()
        assert any(site.startswith("list.remove") for site in promoted)

    def test_fixed_list_consistent(self):
        tool = WriteSkewTool(list_scenario, schedules=8)
        promoted = tool.fix()
        verified = tool.verify_fix(promoted)
        assert verified.inconsistent_schedules == 0


class TestToolMisc:
    def test_zero_schedules_rejected(self):
        with pytest.raises(SkewToolError):
            WriteSkewTool(withdraw_scenario, schedules=0)

    def test_result_aggregation(self):
        result = ToolResult()
        assert result.clean
        assert result.read_sites() == set()

    def test_deterministic_across_instances(self):
        a = WriteSkewTool(withdraw_scenario, schedules=4, seed=5).analyse()
        b = WriteSkewTool(withdraw_scenario, schedules=4, seed=5).analyse()
        assert len(a.witnesses) == len(b.witnesses)
