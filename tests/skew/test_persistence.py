"""Trace JSONL persistence tests (offline post-processing, §5.1)."""

import io

from repro.skew.graph import find_write_skews
from repro.skew.trace import TraceRecorder
from repro.tm.ops import Compute, Read, Write

from tests.conftest import run_program, spec


def skewy_trace(machine):
    a, b = machine.mvmalloc(1), machine.mvmalloc(1)

    def t1():
        yield Read(a, site="t1.r")
        yield Compute(50)
        yield Write(b, 1, site="t1.w")

    def t2():
        yield Read(b, site="t2.r")
        yield Compute(50)
        yield Write(a, 1, site="t2.w")

    recorder = TraceRecorder()
    run_program(machine, "SI-TM", [[spec(t1, "t1")], [spec(t2, "t2")]],
                tracer=recorder)
    return recorder


class TestRoundTrip:
    def test_events_survive(self, machine):
        recorder = skewy_trace(machine)
        buffer = io.StringIO()
        count = recorder.dump_jsonl(buffer)
        assert count == len(recorder.events)
        loaded = TraceRecorder.load_jsonl(buffer.getvalue().splitlines())
        assert len(loaded.events) == len(recorder.events)
        for original, restored in zip(recorder.events, loaded.events):
            assert original == restored

    def test_transactions_reassembled(self, machine):
        recorder = skewy_trace(machine)
        buffer = io.StringIO()
        recorder.dump_jsonl(buffer)
        loaded = TraceRecorder.load_jsonl(buffer.getvalue().splitlines())
        assert len(loaded.committed_transactions()) == \
            len(recorder.committed_transactions())
        for orig, rest in zip(recorder.committed_transactions(),
                              loaded.committed_transactions()):
            assert orig.reads == rest.reads
            assert orig.writes == rest.writes

    def test_offline_analysis_matches_online(self, machine):
        recorder = skewy_trace(machine)
        online = find_write_skews(recorder)
        buffer = io.StringIO()
        recorder.dump_jsonl(buffer)
        loaded = TraceRecorder.load_jsonl(buffer.getvalue().splitlines())
        offline = find_write_skews(loaded)
        assert len(offline.witnesses) == len(online.witnesses)
        assert offline.all_read_sites() == online.all_read_sites()

    def test_blank_lines_ignored(self):
        loaded = TraceRecorder.load_jsonl(["", "  ", ""])
        assert len(loaded.events) == 0
