"""Trace-recorder tests."""

from repro.sim.machine import Machine
from repro.skew.trace import EventKind, TraceRecorder
from repro.tm.ops import Read, Write

from tests.conftest import run_program, spec


def record(machine, programs, system="SI-TM", seed=7):
    recorder = TraceRecorder()
    run_program(machine, system, programs, seed=seed, tracer=recorder)
    return recorder


class TestRecording:
    def test_event_sequence_single_txn(self, machine):
        addr = machine.mvmalloc(1)

        def body():
            value = yield Read(addr, site="r")
            yield Write(addr, value + 1, site="w")

        recorder = record(machine, [[spec(body)]])
        kinds = [e.kind for e in recorder.events]
        assert kinds == [EventKind.BEGIN, EventKind.READ,
                         EventKind.WRITE, EventKind.COMMIT]

    def test_sites_recorded(self, machine):
        addr = machine.mvmalloc(1)

        def body():
            yield Read(addr, site="my.site")
            yield Write(addr, 1, site="other.site")

        recorder = record(machine, [[spec(body)]])
        txn = recorder.committed_transactions()[0]
        assert txn.reads == [(addr, "my.site")]
        assert txn.writes == [(addr, "other.site")]

    def test_abort_marks_transaction(self, machine):
        addr = machine.mvmalloc(1)

        def writer():
            value = yield Read(addr)
            yield Write(addr, value + 1)

        programs = [[spec(writer) for _ in range(5)],
                    [spec(writer) for _ in range(5)]]
        recorder = record(machine, programs)
        aborted = [t for t in recorder.transactions.values() if t.aborted]
        committed = recorder.committed_transactions()
        assert len(committed) == 10
        # retried attempts appear as separate transactions
        assert len(recorder.transactions) == 10 + len(aborted)

    def test_distinct_uids(self, machine):
        addr = machine.mvmalloc(1)

        def body():
            yield Write(addr, 1)

        recorder = record(machine, [[spec(body), spec(body)]])
        uids = [t.uid for t in recorder.transactions.values()]
        assert len(uids) == len(set(uids))


class TestConcurrency:
    def test_concurrent_with_overlapping(self, machine):
        a, b = machine.mvmalloc(1), machine.mvmalloc(1)

        def long_body():
            for _ in range(20):
                yield Read(a)
            yield Write(a, 1)

        def short_body():
            yield Write(b, 1)

        recorder = record(machine, [[spec(long_body, "long")],
                                    [spec(short_body, "short")]])
        txns = recorder.committed_transactions()
        long_txn = next(t for t in txns if t.label == "long")
        short_txn = next(t for t in txns if t.label == "short")
        assert long_txn.concurrent_with(short_txn)
        assert short_txn.concurrent_with(long_txn)

    def test_sequential_not_concurrent(self, machine):
        addr = machine.mvmalloc(1)

        def body():
            yield Write(addr + 0, 1)

        recorder = record(machine, [[spec(body), spec(body)]])
        first, second = recorder.committed_transactions()
        assert not first.concurrent_with(second)
