"""Package hygiene: every module imports, is documented, and examples
at least parse."""

import importlib
import pathlib
import pkgutil

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def iter_modules():
    package_path = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(package_path)],
                                      prefix="repro."):
        yield info.name


class TestModules:
    def test_every_module_imports(self):
        for name in iter_modules():
            importlib.import_module(name)

    def test_every_module_documented(self):
        undocumented = []
        for name in iter_modules():
            module = importlib.import_module(name)
            doc = (module.__doc__ or "").strip()
            if len(doc) < 20:
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_classes_documented(self):
        undocumented = []
        for name in iter_modules():
            module = importlib.import_module(name)
            for attr_name in dir(module):
                if attr_name.startswith("_"):
                    continue
                attr = getattr(module, attr_name)
                if isinstance(attr, type) \
                        and attr.__module__ == name \
                        and not (attr.__doc__ or "").strip():
                    undocumented.append(f"{name}.{attr_name}")
        assert not undocumented, undocumented


class TestExamples:
    def test_examples_parse(self):
        import ast

        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for path in examples:
            ast.parse(path.read_text(), filename=str(path))

    def test_examples_have_docstrings_and_main(self):
        import ast

        for path in sorted((REPO_ROOT / "examples").glob("*.py")):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name
            names = {node.name for node in tree.body
                     if isinstance(node, (ast.FunctionDef,))}
            assert "main" in names, path.name


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (REPO_ROOT / name).is_file(), name

    def test_docs_directory(self):
        docs = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
        assert {"protocols.md", "simulator.md", "workloads.md",
                "mvm.md", "extending.md", "faq.md"} <= docs

    def test_experiments_covers_every_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for heading in ("Figure 1", "Figure 2", "Figure 4", "Figure 6",
                        "Figure 7", "Figure 8", "Table 1", "Table 2"):
            assert heading in text, heading
