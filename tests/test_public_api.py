"""Public-API surface tests: the README's imports must all work."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_systems_registry(self):
        assert set(repro.SYSTEMS) == {"2PL", "SONTM", "SI-TM", "SSI-TM",
                                      "LogTM", "HybridHTM"}

    def test_readme_quickstart(self):
        from repro import (
            Engine,
            Machine,
            Read,
            SplitRandom,
            TransactionSpec,
            Write,
        )
        from repro.tm import SnapshotIsolationTM

        machine = Machine()
        counter = machine.mvmalloc(1)

        def increment():
            value = yield Read(counter)
            yield Write(counter, value + 1)

        tm = SnapshotIsolationTM(machine, SplitRandom(7))
        programs = [[TransactionSpec(increment, "inc") for _ in range(10)]
                    for _ in range(4)]
        stats = Engine(tm, programs).run()
        assert machine.plain_load(counter) == 40
        assert stats.total_commits == 40


class TestSubpackageExports:
    def test_structures(self):
        from repro.structures import (
            TxArray,
            TxCounter,
            TxDoublyLinkedList,
            TxHashMap,
            TxLinkedList,
            TxQueue,
            TxRedBlackTree,
        )
        assert all((TxArray, TxCounter, TxDoublyLinkedList, TxHashMap,
                    TxLinkedList, TxQueue, TxRedBlackTree))

    def test_skew(self):
        from repro.skew import (
            SkewReport,
            TraceRecorder,
            WriteSkewTool,
            find_write_skews,
        )
        assert all((SkewReport, TraceRecorder, WriteSkewTool,
                    find_write_skews))

    def test_harness(self):
        from repro.harness import figure1, figure7, figure8, run_once
        assert all((figure1, figure7, figure8, run_once))

    def test_workloads(self):
        from repro.workloads import PAPER_ORDER, REGISTRY
        assert len(PAPER_ORDER) == 10
        assert all(name in REGISTRY for name in PAPER_ORDER)
