"""Cross-module integration tests: multiple structures, one program.

These exercise the whole stack — engine, TM system, MVM, caches,
structures — in one scenario per test, the way a downstream user would
compose the library.
"""

import pytest

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.structures import (
    TxCounter,
    TxHashMap,
    TxLinkedList,
    TxQueue,
    TxRedBlackTree,
)
from repro.tm.ops import Compute

from tests.conftest import run_program, spec

ALL_SYSTEMS = ["2PL", "SONTM", "SI-TM", "SSI-TM"]


class TestPipelineScenario:
    """Producer/consumer through a queue into an index (tree + map)."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_items_flow_exactly_once(self, system):
        machine = Machine()
        queue = TxQueue(machine, capacity=128)
        queue.populate(range(1, 41))        # 40 items, nonzero
        index = TxRedBlackTree(machine, skew_safe=True)
        seen = TxCounter(machine)

        def consume():
            item = yield from queue.dequeue()
            if item is None:
                return
            yield Compute(3)
            inserted = yield from index.insert(item)
            if inserted:
                yield from seen.add(1)

        programs = [[spec(consume, "consume") for _ in range(20)]
                    for _ in range(3)]
        run_program(machine, system, programs)
        assert seen.value == 40
        assert index.keys_inorder() == list(range(1, 41))
        assert index.check_invariants()


class TestDirectoryScenario:
    """A name directory: map for lookup, list for ordered iteration."""

    @pytest.mark.parametrize("system", ["2PL", "SI-TM"])
    def test_structures_stay_in_sync(self, system):
        machine = Machine()
        by_id = TxHashMap(machine, buckets=16)
        ordered = TxLinkedList(machine, skew_safe=True)
        rng = SplitRandom(31)

        def register(key):
            def body():
                existing = yield from by_id.get(key)
                if existing is None:
                    yield from by_id.put(key, key * 10)
                    yield from ordered.insert(key)
            return body

        programs = []
        for tid in range(4):
            thread_rng = rng.split(tid)
            programs.append([
                spec(register(thread_rng.randrange(40)), "register")
                for _ in range(25)])
        run_program(machine, system, programs)
        mapped = sorted(by_id.to_dict())
        assert ordered.to_list() == mapped

    def test_si_snapshot_spans_structures(self):
        """A reader sees ONE point in time across two structures."""
        machine = Machine()
        by_id = TxHashMap(machine, buckets=16)
        counter = TxCounter(machine)
        totals = TxCounter(machine)  # records committed observations

        def writer(key):
            def body():
                yield from by_id.put(key, 1)
                yield from counter.add(1)
            return body

        def reader():
            count = yield from counter.get()
            present = 0
            for key in range(20):
                value = yield from by_id.get(key)
                if value:
                    present += 1
            # under SI this equality ALWAYS holds inside the snapshot
            assert present == count
            yield from totals.add(1)

        programs = [
            [spec(writer(k), "write") for k in range(20)],
            [spec(reader, "read") for _ in range(10)],
        ]
        run_program(machine, "SI-TM", programs)
        assert totals.value == 10


class TestColdVsWarmTiming:
    def test_cache_warmup_shortens_runtime(self):
        """The same single-thread program runs faster warm than cold."""
        machine = Machine()
        tree = TxRedBlackTree(machine)
        tree.populate(range(64))

        def scan_all():
            for key in range(64):
                yield from tree.lookup(key)

        stats = run_program(
            machine, "SI-TM",
            [[spec(scan_all, "cold"), spec(scan_all, "warm")]])
        # both committed; fetch per-label cycle costs via thread clock:
        # run again split across two engines for a clean comparison
        machine2 = Machine()
        tree2 = TxRedBlackTree(machine2)
        tree2.populate(range(64))

        def scan2():
            for key in range(64):
                yield from tree2.lookup(key)

        cold = run_program(machine2, "SI-TM", [[spec(scan2, "cold")]])
        warm = run_program(machine2, "SI-TM", [[spec(scan2, "warm")]])
        assert warm.makespan_cycles < cold.makespan_cycles
        assert stats.total_commits == 2
