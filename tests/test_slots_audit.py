"""Hot-class ``__slots__`` audit (flat-loop refactor, ISSUE 6).

Every object allocated or touched per engine step, per transactional
operation, or per version install must not carry a per-instance
``__dict__``: attribute access through slot descriptors is measurably
faster in the hot loop, and the dict costs ~100 bytes per instance on
classes allocated millions of times per run.  This test walks the hot
classes and fails if any of them (or any of their bases) reintroduces
``__dict__`` — e.g. by adding a class attribute without extending
``__slots__``, or by inheriting from a slotless base.

Exception classes are exempt by construction (``BaseException``
instances always carry ``__dict__``), as is anything only built once
per run (configs, controllers, the engine itself).
"""

import pytest

from repro.mvm.timestamps import ActiveTransactionTable, GlobalClock
from repro.mvm.version_list import VersionList
from repro.obs.spans import Span
from repro.sim.engine import _ThreadState
from repro.tm.api import CommitToken, Txn
from repro.tm.backoff import ExponentialBackoff, NoBackoff
from repro.tm.ops import Abort, Compute, Op, Read, Write

#: one entry per hot class: allocated per-attempt (Txn, Span), per-op
#: (the Op hierarchy), per-thread (_ThreadState), per-line
#: (VersionList), or consulted on every commit (GlobalClock,
#: ActiveTransactionTable, CommitToken, backoff policies)
HOT_CLASSES = [
    Txn,
    CommitToken,
    _ThreadState,
    VersionList,
    GlobalClock,
    ActiveTransactionTable,
    ExponentialBackoff,
    NoBackoff,
    Span,
    Op,
    Read,
    Write,
    Compute,
    Abort,
]


def _dict_carrier(cls):
    """The class in ``cls.__mro__`` that contributes ``__dict__``, if any."""
    for klass in cls.__mro__:
        if "__dict__" in klass.__dict__:
            return klass
    return None


@pytest.mark.parametrize("cls", HOT_CLASSES,
                         ids=[c.__name__ for c in HOT_CLASSES])
def test_hot_class_has_slots_and_no_dict(cls):
    carrier = _dict_carrier(cls)
    assert carrier is None, (
        f"{cls.__module__}.{cls.__name__} carries a per-instance "
        f"__dict__ (introduced by {carrier.__module__}."
        f"{carrier.__name__}); extend __slots__ instead")
    assert hasattr(cls, "__slots__"), cls


@pytest.mark.parametrize("cls", [Txn, _ThreadState, VersionList, Span],
                         ids=lambda c: c.__name__)
def test_slots_actually_reject_stray_attributes(cls):
    """The audit above is structural; this proves it behaviourally for
    the classes most likely to grow debug attributes."""
    import dataclasses

    if dataclasses.is_dataclass(cls):
        fields = dataclasses.fields(cls)
        kwargs = {}
        for field in fields:
            if field.default is not dataclasses.MISSING:
                continue
            if field.type in ("int", int):
                kwargs[field.name] = 0
            else:
                kwargs[field.name] = ""
        instance = cls(**kwargs)
    elif cls is Txn:
        instance = cls(0, "audit", 0)
    elif cls is _ThreadState:
        instance = cls(0, iter(()))
    elif cls is VersionList:
        instance = cls()
    else:
        pytest.skip(f"no constructor recipe for {cls}")
    with pytest.raises(AttributeError):
        instance.stray_debug_attribute = 1
