"""TxLinkedList tests, including the Listing 2 write-skew reproduction."""

import pytest

from repro.sim.machine import Machine
from repro.structures import TxLinkedList

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def lst(machine):
    lst = TxLinkedList(machine)
    lst.populate([10, 20, 30, 40])
    return lst


class TestSequential:
    def test_populate_sorted(self, machine):
        lst = TxLinkedList(machine)
        lst.populate([30, 10, 20])
        assert lst.to_list() == [10, 20, 30]

    def test_lookup_hit_and_miss(self, machine, lst):
        assert drive_plain(machine, lst.lookup(20)) is True
        assert drive_plain(machine, lst.lookup(25)) is False

    def test_insert_keeps_order(self, machine, lst):
        assert drive_plain(machine, lst.insert(25)) is True
        assert lst.to_list() == [10, 20, 25, 30, 40]

    def test_insert_duplicate_rejected(self, machine, lst):
        assert drive_plain(machine, lst.insert(20)) is False
        assert lst.to_list() == [10, 20, 30, 40]

    def test_insert_at_head_and_tail(self, machine, lst):
        drive_plain(machine, lst.insert(5))
        drive_plain(machine, lst.insert(99))
        assert lst.to_list() == [5, 10, 20, 30, 40, 99]

    def test_remove(self, machine, lst):
        assert drive_plain(machine, lst.remove(30)) is True
        assert lst.to_list() == [10, 20, 40]

    def test_remove_absent(self, machine, lst):
        assert drive_plain(machine, lst.remove(35)) is False

    def test_remove_head_tail(self, machine, lst):
        drive_plain(machine, lst.remove(10))
        drive_plain(machine, lst.remove(40))
        assert lst.to_list() == [20, 30]

    def test_length(self, machine, lst):
        assert drive_plain(machine, lst.length()) == 4

    def test_empty_list(self, machine):
        lst = TxLinkedList(machine)
        assert lst.to_list() == []
        assert drive_plain(machine, lst.lookup(1)) is False
        assert drive_plain(machine, lst.remove(1)) is False


class TestListing2WriteSkew:
    """Adjacent removes: broken under plain SI, fixed by skew_safe."""

    def _run(self, skew_safe, seed):
        machine = Machine()
        lst = TxLinkedList(machine, skew_safe=skew_safe)
        lst.populate([1, 2, 3, 4])
        programs = [[spec(lambda: lst.remove(2), "rm2")],
                    [spec(lambda: lst.remove(3), "rm3")]]
        run_program(machine, "SI-TM", programs, seed=seed)
        return lst.to_list()

    def test_unsafe_drops_or_resurrects_nodes(self):
        outcomes = {tuple(self._run(False, seed)) for seed in range(6)}
        assert any(out != (1, 4) for out in outcomes)

    def test_fix_forces_write_write_conflict(self):
        for seed in range(6):
            assert self._run(True, seed) == [1, 4]

    def test_fix_under_serializable_systems_consistent(self):
        for system in ("2PL", "SONTM", "SSI-TM"):
            machine = Machine()
            lst = TxLinkedList(machine)
            lst.populate([1, 2, 3, 4])
            programs = [[spec(lambda: lst.remove(2), "rm2")],
                        [spec(lambda: lst.remove(3), "rm3")]]
            run_program(machine, system, programs)
            assert lst.to_list() == [1, 4]


class TestConcurrentMix:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
    def test_mixed_operations_stay_sorted(self, system):
        machine = Machine()
        lst = TxLinkedList(machine, skew_safe=True)
        lst.populate(range(0, 40, 2))
        from repro.common.rng import SplitRandom
        rng = SplitRandom(5)
        programs = []
        for t in range(4):
            r = rng.split(t)
            specs = []
            for _ in range(25):
                key = r.randrange(40)
                if r.random() < 0.5:
                    specs.append(spec(lambda k=key: lst.insert(k), "ins"))
                else:
                    specs.append(spec(lambda k=key: lst.remove(k), "rem"))
            programs.append(specs)
        run_program(machine, system, programs)
        items = lst.to_list()
        assert items == sorted(set(items))
