"""TxSkipList tests: determinism, model-based checks, concurrency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine
from repro.structures.skiplist import MAX_HEIGHT, TxSkipList, tower_height

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def slist(machine):
    lst = TxSkipList(machine)
    lst.populate([(10, 1), (20, 2), (30, 3)])
    return lst


class TestTowerHeights:
    def test_deterministic(self):
        assert all(tower_height(k) == tower_height(k) for k in range(500))

    def test_bounded(self):
        heights = [tower_height(k) for k in range(2000)]
        assert all(1 <= h <= MAX_HEIGHT for h in heights)

    def test_geometric_ish_distribution(self):
        heights = [tower_height(k) for k in range(4000)]
        ones = sum(1 for h in heights if h == 1)
        twos = sum(1 for h in heights if h == 2)
        # p = 1/2 per level: roughly half the towers are height 1
        assert 0.3 < ones / len(heights) < 0.7
        assert twos < ones


class TestSequential:
    def test_lookup(self, machine, slist):
        assert drive_plain(machine, slist.lookup(20)) == 2
        assert drive_plain(machine, slist.lookup(25)) is None

    def test_insert(self, machine, slist):
        assert drive_plain(machine, slist.insert(25, 9)) is True
        assert slist.keys() == [10, 20, 25, 30]
        assert slist.check_invariants()

    def test_insert_duplicate(self, machine, slist):
        assert drive_plain(machine, slist.insert(20, 5)) is False

    def test_remove(self, machine, slist):
        assert drive_plain(machine, slist.remove(20)) is True
        assert slist.keys() == [10, 30]
        assert slist.check_invariants()

    def test_remove_absent(self, machine, slist):
        assert drive_plain(machine, slist.remove(21)) is False

    def test_length(self, machine, slist):
        assert drive_plain(machine, slist.length()) == 3

    def test_empty(self, machine):
        lst = TxSkipList(machine)
        assert lst.keys() == []
        assert drive_plain(machine, lst.lookup(1)) is None
        assert lst.check_invariants()

    def test_many_keys_all_levels_sorted(self, machine):
        lst = TxSkipList(machine)
        lst.populate(range(0, 300, 3))
        assert lst.keys() == list(range(0, 300, 3))
        assert lst.check_invariants()


class TestModelBased:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove"]),
                              st.integers(0, 40)),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_set_model(self, ops):
        machine = Machine()
        lst = TxSkipList(machine)
        model = set()
        for op, key in ops:
            if op == "insert":
                expected = key not in model
                result = drive_plain(machine, lst.insert(key))
                model.add(key)
            else:
                expected = key in model
                result = drive_plain(machine, lst.remove(key))
                model.discard(key)
            assert result is expected
        assert lst.keys() == sorted(model)
        assert lst.check_invariants()


class TestConcurrent:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SSI-TM"])
    def test_serializable_systems_keep_invariants(self, system):
        machine = Machine()
        lst = TxSkipList(machine)
        programs = []
        for tid in range(4):
            keys = list(range(tid * 25, tid * 25 + 25))
            programs.append([spec(lambda k=k: lst.insert(k), "ins")
                             for k in keys])
        run_program(machine, system, programs)
        assert lst.keys() == list(range(100))
        assert lst.check_invariants()

    def test_si_with_fix_consistent_mix(self):
        machine = Machine()
        lst = TxSkipList(machine, skew_safe=True)
        lst.populate(range(0, 60, 2))
        from repro.common.rng import SplitRandom

        rng = SplitRandom(8)
        programs = []
        for tid in range(4):
            thread_rng = rng.split(tid)
            specs = []
            for _ in range(25):
                key = thread_rng.randrange(60)
                op = lst.insert if thread_rng.random() < 0.5 else lst.remove
                specs.append(spec(lambda k=key, op=op: op(k), "mix"))
            programs.append(specs)
        run_program(machine, "SI-TM", programs)
        keys = lst.keys()
        assert keys == sorted(set(keys))
        assert lst.check_invariants()

    def test_lookups_read_only_under_si(self):
        machine = Machine()
        lst = TxSkipList(machine, skew_safe=True)
        lst.populate(range(40))
        programs = [[spec(lambda k=k: lst.lookup(k), "get")
                     for k in range(40)]]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_aborts == 0
