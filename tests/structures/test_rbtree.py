"""TxRedBlackTree tests: CLRS invariants, model-based property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine
from repro.structures import TxRedBlackTree

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def tree(machine):
    tree = TxRedBlackTree(machine)
    tree.populate([50, 30, 70, 20, 40, 60, 80])
    return tree


class TestSequential:
    def test_populate_inorder(self, tree):
        assert tree.keys_inorder() == [20, 30, 40, 50, 60, 70, 80]

    def test_invariants_after_populate(self, tree):
        assert tree.check_invariants()

    def test_lookup_hit(self, machine, tree):
        assert drive_plain(machine, tree.lookup(40)) == 0

    def test_lookup_miss(self, machine, tree):
        assert drive_plain(machine, tree.lookup(41)) is None

    def test_insert_with_value(self, machine, tree):
        assert drive_plain(machine, tree.insert(45, value=9)) is True
        assert drive_plain(machine, tree.lookup(45)) == 9

    def test_insert_duplicate(self, machine, tree):
        assert drive_plain(machine, tree.insert(50)) is False

    def test_remove_leaf(self, machine, tree):
        assert drive_plain(machine, tree.remove(20)) is True
        assert tree.keys_inorder() == [30, 40, 50, 60, 70, 80]
        assert tree.check_invariants()

    def test_remove_internal_two_children(self, machine, tree):
        assert drive_plain(machine, tree.remove(30)) is True
        assert tree.keys_inorder() == [20, 40, 50, 60, 70, 80]
        assert tree.check_invariants()

    def test_remove_root(self, machine, tree):
        assert drive_plain(machine, tree.remove(50)) is True
        assert 50 not in tree.keys_inorder()
        assert tree.check_invariants()

    def test_remove_absent(self, machine, tree):
        assert drive_plain(machine, tree.remove(55)) is False

    def test_remove_until_empty(self, machine, tree):
        for key in [20, 30, 40, 50, 60, 70, 80]:
            assert drive_plain(machine, tree.remove(key)) is True
            assert tree.check_invariants()
        assert tree.keys_inorder() == []

    def test_ascending_insertions_stay_balanced(self, machine):
        tree = TxRedBlackTree(machine)
        for key in range(64):
            drive_plain(machine, tree.insert(key))
        assert tree.keys_inorder() == list(range(64))
        assert tree.check_invariants()


class TestModelBased:
    """Hypothesis: arbitrary op sequences match a Python-set model."""

    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove"]),
                              st.integers(0, 30)),
                    min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_matches_set_model(self, ops):
        machine = Machine()
        tree = TxRedBlackTree(machine)
        model = set()
        for op, key in ops:
            if op == "insert":
                expected = key not in model
                result = drive_plain(machine, tree.insert(key))
                model.add(key)
            else:
                expected = key in model
                result = drive_plain(machine, tree.remove(key))
                model.discard(key)
            assert result is expected
            assert tree.check_invariants()
        assert tree.keys_inorder() == sorted(model)


class TestConcurrent:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SSI-TM"])
    def test_serializable_systems_unsafe_tree(self, system):
        """Serializable TMs keep even the skew-prone tree healthy."""
        machine = Machine()
        tree = TxRedBlackTree(machine)  # no promotion fix
        programs = []
        for t in range(4):
            keys = list(range(t * 20, t * 20 + 20))
            programs.append([spec(lambda k=k: tree.insert(k), "ins")
                             for k in keys])
        run_program(machine, system, programs)
        assert tree.keys_inorder() == list(range(80))
        assert tree.check_invariants()

    def test_si_with_promotion_fix(self):
        machine = Machine()
        tree = TxRedBlackTree(machine, skew_safe=True)
        programs = []
        for t in range(4):
            keys = list(range(t * 20, t * 20 + 20))
            programs.append([spec(lambda k=k: tree.insert(k), "ins")
                             for k in keys])
        run_program(machine, "SI-TM", programs)
        assert tree.keys_inorder() == list(range(80))
        assert tree.check_invariants()

    def test_lookups_are_read_only_under_si(self):
        machine = Machine()
        tree = TxRedBlackTree(machine, skew_safe=True)
        tree.populate(range(30))
        programs = [[spec(lambda k=k: tree.lookup(k), "get")
                     for k in range(30)]]
        stats = run_program(machine, "SI-TM", programs)
        assert stats.total_aborts == 0
