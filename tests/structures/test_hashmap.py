"""TxHashMap tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine
from repro.structures import TxHashMap

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def table(machine):
    table = TxHashMap(machine, buckets=8)
    table.populate([(1, 10), (2, 20), (3, 30)])
    return table


class TestSequential:
    def test_get_hit(self, machine, table):
        assert drive_plain(machine, table.get(2)) == 20

    def test_get_miss(self, machine, table):
        assert drive_plain(machine, table.get(9)) is None

    def test_contains(self, machine, table):
        assert drive_plain(machine, table.contains(1)) is True
        assert drive_plain(machine, table.contains(7)) is False

    def test_put_new(self, machine, table):
        assert drive_plain(machine, table.put(4, 40)) is True
        assert drive_plain(machine, table.get(4)) == 40

    def test_put_update(self, machine, table):
        assert drive_plain(machine, table.put(1, 11)) is False
        assert drive_plain(machine, table.get(1)) == 11

    def test_increment_existing(self, machine, table):
        assert drive_plain(machine, table.increment(1, 5)) == 15

    def test_increment_absent_creates(self, machine, table):
        assert drive_plain(machine, table.increment(99, 3)) == 3
        assert drive_plain(machine, table.get(99)) == 3

    def test_remove(self, machine, table):
        assert drive_plain(machine, table.remove(2)) is True
        assert drive_plain(machine, table.get(2)) is None

    def test_remove_absent(self, machine, table):
        assert drive_plain(machine, table.remove(42)) is False

    def test_remove_middle_of_chain(self, machine):
        # force all keys into one bucket
        table = TxHashMap(machine, buckets=1)
        table.populate([(1, 1), (2, 2), (3, 3)])
        assert drive_plain(machine, table.remove(2)) is True
        assert drive_plain(machine, table.get(1)) == 1
        assert drive_plain(machine, table.get(3)) == 3

    def test_to_dict(self, table):
        assert table.to_dict() == {1: 10, 2: 20, 3: 30}

    def test_invalid_buckets(self, machine):
        with pytest.raises(ValueError):
            TxHashMap(machine, buckets=0)


class TestModelBased:
    @given(st.lists(st.tuples(st.sampled_from(["put", "remove", "inc"]),
                              st.integers(0, 15),
                              st.integers(0, 9)),
                    max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_model(self, ops):
        machine = Machine()
        table = TxHashMap(machine, buckets=4)
        model = {}
        for op, key, value in ops:
            if op == "put":
                drive_plain(machine, table.put(key, value))
                model[key] = value
            elif op == "remove":
                result = drive_plain(machine, table.remove(key))
                assert result is (key in model)
                model.pop(key, None)
            else:
                expected = model.get(key, 0) + value
                assert drive_plain(machine,
                                   table.increment(key, value)) == expected
                model[key] = expected
        assert table.to_dict() == model


class TestConcurrent:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
    def test_concurrent_increments_conserved(self, system):
        machine = Machine()
        table = TxHashMap(machine, buckets=16)
        table.populate([(k, 0) for k in range(8)])
        programs = [
            [spec(lambda k=k: table.increment(k % 8), "inc")
             for k in range(40)]
            for _ in range(4)]
        run_program(machine, system, programs)
        assert sum(table.to_dict().values()) == 160
