"""TxQueue and TxCounter tests."""

import pytest

from repro.sim.machine import Machine
from repro.structures import QueueFull, TxCounter, TxQueue, write

from tests.conftest import drive_plain, run_program, spec


class TestQueueSequential:
    def test_fifo_order(self, machine):
        queue = TxQueue(machine, capacity=8)
        for value in (5, 6, 7):
            assert drive_plain(machine, queue.enqueue(value)) is True
        assert drive_plain(machine, queue.dequeue()) == 5
        assert drive_plain(machine, queue.dequeue()) == 6

    def test_empty_dequeue(self, machine):
        queue = TxQueue(machine, capacity=4)
        assert drive_plain(machine, queue.dequeue()) is None

    def test_full_enqueue(self, machine):
        queue = TxQueue(machine, capacity=2)
        drive_plain(machine, queue.enqueue(1))
        drive_plain(machine, queue.enqueue(2))
        assert drive_plain(machine, queue.enqueue(3)) is False

    def test_wraparound(self, machine):
        queue = TxQueue(machine, capacity=2)
        for i in range(6):
            assert drive_plain(machine, queue.enqueue(i)) is True
            assert drive_plain(machine, queue.dequeue()) == i

    def test_size(self, machine):
        queue = TxQueue(machine, capacity=8)
        queue.populate([1, 2, 3])
        assert drive_plain(machine, queue.size()) == 3

    def test_populate_and_drain(self, machine):
        queue = TxQueue(machine, capacity=8)
        queue.populate([9, 8, 7])
        assert queue.drain_plain() == [9, 8, 7]

    def test_populate_overflow(self, machine):
        queue = TxQueue(machine, capacity=2)
        with pytest.raises(QueueFull):
            queue.populate([1, 2, 3])

    def test_invalid_capacity(self, machine):
        with pytest.raises(ValueError):
            TxQueue(machine, capacity=0)


class TestQueueConcurrent:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
    def test_every_element_dequeued_exactly_once(self, system):
        machine = Machine()
        queue = TxQueue(machine, capacity=64)
        queue.populate(range(40))
        # each consumer transaction records its result in a private slot:
        # aborted attempts roll back, so only committed dequeues count
        slots = machine.mvmalloc(40 * 8)

        def consume(slot):
            def body():
                value = yield from queue.dequeue()
                if value is not None:
                    yield from write(slot, value + 1)
            return body

        programs = [[spec(consume(slots + (t * 20 + i) * 8), "deq")
                     for i in range(20)] for t in range(2)]
        run_program(machine, system, programs)
        seen = [machine.plain_load(slots + i * 8) - 1 for i in range(40)
                if machine.plain_load(slots + i * 8)]
        assert sorted(seen) == list(range(40))


class TestCounter:
    def test_initial_value(self, machine):
        assert TxCounter(machine, initial=5).value == 5

    def test_add(self, machine):
        counter = TxCounter(machine)
        assert drive_plain(machine, counter.add(3)) == 3
        assert counter.value == 3

    def test_get(self, machine):
        counter = TxCounter(machine, initial=7)
        assert drive_plain(machine, counter.get()) == 7

    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM", "SSI-TM"])
    def test_concurrent_increments_exact(self, system):
        machine = Machine()
        counter = TxCounter(machine)
        programs = [[spec(lambda: counter.add(1), "inc")
                     for _ in range(25)] for _ in range(4)]
        run_program(machine, system, programs)
        assert counter.value == 100
