"""TxArray tests."""

import pytest

from repro.sim.machine import Machine

from repro.structures import TxArray

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def array(machine):
    arr = TxArray(machine, 32)
    arr.populate(range(32))
    return arr


class TestSequential:
    def test_populate_snapshot(self, array):
        assert array.snapshot() == list(range(32))

    def test_get(self, machine, array):
        assert drive_plain(machine, array.get(5)) == 5

    def test_set(self, machine, array):
        drive_plain(machine, array.set(5, 99))
        assert array.snapshot()[5] == 99

    def test_add_returns_new_value(self, machine, array):
        assert drive_plain(machine, array.add(3, 10)) == 13

    def test_sum_all(self, machine, array):
        assert drive_plain(machine, array.sum_all()) == sum(range(32))

    def test_sum_range(self, machine, array):
        assert drive_plain(machine, array.sum_range(4, 8)) == 4 + 5 + 6 + 7

    def test_bounds_checked(self, array):
        with pytest.raises(IndexError):
            array.get(32)
        with pytest.raises(IndexError):
            array.set(-1, 0)

    def test_invalid_size(self, machine):
        with pytest.raises(ValueError):
            TxArray(machine, 0)


class TestTransactional:
    @pytest.mark.parametrize("system", ["2PL", "SONTM", "SI-TM"])
    def test_concurrent_disjoint_adds(self, system):
        machine = Machine()
        arr = TxArray(machine, 64)
        arr.populate([0] * 64)
        programs = [
            [spec(lambda i=i, t=t: arr.add(t * 16 + i % 16, 1), "add")
             for i in range(32)]
            for t in range(4)]
        stats = run_program(machine, system, programs)
        assert stats.total_commits == 128
        assert sum(arr.snapshot()) == 128

    def test_scan_is_read_only_under_si(self):
        machine = Machine()
        arr = TxArray(machine, 16)
        arr.populate([1] * 16)
        results = []

        def scan():
            total = yield from arr.sum_all()
            results.append(total)

        stats = run_program(machine, "SI-TM", [[spec(scan, "scan")]])
        assert results == [16]
        assert stats.total_aborts == 0
