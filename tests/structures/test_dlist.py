"""TxDoublyLinkedList tests."""

import pytest

from repro.sim.machine import Machine
from repro.structures import TxDoublyLinkedList

from tests.conftest import drive_plain, run_program, spec


@pytest.fixture
def dlist(machine):
    lst = TxDoublyLinkedList(machine)
    lst.populate([10, 20, 30, 40])
    return lst


class TestSequential:
    def test_populate_order(self, dlist):
        assert dlist.to_list() == [10, 20, 30, 40]

    def test_consistency_check(self, dlist):
        assert dlist.check_consistent()

    def test_lookup(self, machine, dlist):
        assert drive_plain(machine, dlist.lookup(30)) is True
        assert drive_plain(machine, dlist.lookup(31)) is False

    def test_insert_middle(self, machine, dlist):
        assert drive_plain(machine, dlist.insert(25)) is True
        assert dlist.to_list() == [10, 20, 25, 30, 40]
        assert dlist.check_consistent()

    def test_insert_duplicate(self, machine, dlist):
        assert drive_plain(machine, dlist.insert(20)) is False

    def test_insert_extremes(self, machine, dlist):
        drive_plain(machine, dlist.insert(1))
        drive_plain(machine, dlist.insert(99))
        assert dlist.to_list() == [1, 10, 20, 30, 40, 99]
        assert dlist.check_consistent()

    def test_remove(self, machine, dlist):
        assert drive_plain(machine, dlist.remove(20)) is True
        assert dlist.to_list() == [10, 30, 40]
        assert dlist.check_consistent()

    def test_remove_absent(self, machine, dlist):
        assert drive_plain(machine, dlist.remove(21)) is False

    def test_length(self, machine, dlist):
        assert drive_plain(machine, dlist.length()) == 4

    def test_empty(self, machine):
        lst = TxDoublyLinkedList(machine)
        assert lst.to_list() == []
        assert lst.check_consistent()


class TestAdjacentRemoveSkew:
    """Concurrent adjacent removes corrupt the chain without the fix."""

    def _run(self, skew_safe, seed):
        machine = Machine()
        lst = TxDoublyLinkedList(machine, skew_safe=skew_safe)
        lst.populate([1, 2, 3, 4])
        programs = [[spec(lambda: lst.remove(2), "rm2")],
                    [spec(lambda: lst.remove(3), "rm3")]]
        run_program(machine, "SI-TM", programs, seed=seed)
        return lst

    def test_unsafe_breaks_chain(self):
        broken = 0
        for seed in range(6):
            lst = self._run(False, seed)
            if not lst.check_consistent() or lst.to_list() != [1, 4]:
                broken += 1
        assert broken > 0

    def test_safe_chain_consistent(self):
        for seed in range(6):
            lst = self._run(True, seed)
            assert lst.check_consistent()
            assert lst.to_list() == [1, 4]


class TestConcurrentMix:
    @pytest.mark.parametrize("system", ["2PL", "SSI-TM"])
    def test_serializable_mix_consistent(self, system):
        machine = Machine()
        lst = TxDoublyLinkedList(machine)
        lst.populate(range(0, 30, 2))
        from repro.common.rng import SplitRandom
        rng = SplitRandom(6)
        programs = []
        for t in range(3):
            r = rng.split(t)
            specs = []
            for _ in range(20):
                key = r.randrange(30)
                op = lst.insert if r.random() < 0.5 else lst.remove
                specs.append(spec(lambda k=key, op=op: op(k), "mix"))
            programs.append(specs)
        run_program(machine, system, programs)
        items = lst.to_list()
        assert items == sorted(set(items))
        assert lst.check_consistent()
