"""Line-remapper tests (section 3.3's chipkill and bit steering)."""

import pytest

from repro.common.errors import ConfigError, MVMError
from repro.mvm.remap import DEFAULT_TIERS, LineRemapper


class TestChipkill:
    def test_healthy_line_identity(self):
        assert LineRemapper().resolve(100) == 100

    def test_deactivation_remaps_to_spare(self):
        remapper = LineRemapper(spare_lines=4)
        spare = remapper.deactivate(100)
        assert spare is not None
        assert remapper.resolve(100) == spare
        assert remapper.is_deactivated(100)

    def test_distinct_spares(self):
        remapper = LineRemapper(spare_lines=4)
        spares = {remapper.deactivate(line) for line in range(4)}
        assert len(spares) == 4

    def test_pool_exhaustion_denies_repair(self):
        remapper = LineRemapper(spare_lines=1)
        assert remapper.deactivate(1) is not None
        assert remapper.deactivate(2) is None
        assert remapper.stats().repairs_denied == 1
        # the unrepairable line keeps serving its original cells
        assert remapper.resolve(2) == 2

    def test_double_deactivation_rejected(self):
        remapper = LineRemapper(spare_lines=2)
        remapper.deactivate(5)
        with pytest.raises(MVMError):
            remapper.deactivate(5)

    def test_negative_spares_rejected(self):
        with pytest.raises(ConfigError):
            LineRemapper(spare_lines=-1)


class TestSteering:
    def test_default_tier_normal(self):
        remapper = LineRemapper()
        assert remapper.tier(7) == "normal"
        assert remapper.latency_adjustment(7) == 0

    def test_steer_to_slow(self):
        remapper = LineRemapper()
        remapper.steer(7, "slow")
        assert remapper.latency_adjustment(7) == DEFAULT_TIERS["slow"]

    def test_steer_to_fast_negative_adjustment(self):
        remapper = LineRemapper()
        remapper.steer(7, "fast")
        assert remapper.latency_adjustment(7) < 0

    def test_steer_back_to_normal_clears(self):
        remapper = LineRemapper()
        remapper.steer(7, "slow")
        remapper.steer(7, "normal")
        assert remapper.stats().steered_lines == 0

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError):
            LineRemapper().steer(7, "quantum")

    def test_custom_tier_table(self):
        remapper = LineRemapper(tiers={"normal": 0, "pmem": 250})
        remapper.steer(3, "pmem")
        assert remapper.latency_adjustment(3) == 250

    def test_tier_table_requires_normal(self):
        with pytest.raises(ConfigError):
            LineRemapper(tiers={"fast": -10})


class TestStats:
    def test_counters(self):
        remapper = LineRemapper(spare_lines=2)
        remapper.deactivate(1)
        remapper.steer(9, "slow")
        stats = remapper.stats()
        assert stats.deactivated_lines == 1
        assert stats.spares_remaining == 1
        assert stats.steered_lines == 1
        assert stats.repairs_denied == 0

    def test_remap_composes_with_steering(self):
        """A deactivated line steered to a tier keeps both properties."""
        remapper = LineRemapper(spare_lines=2)
        spare = remapper.deactivate(4)
        remapper.steer(4, "slow")
        assert remapper.resolve(4) == spare
        assert remapper.latency_adjustment(4) == DEFAULT_TIERS["slow"]
