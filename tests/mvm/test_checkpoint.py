"""Checkpointing tests (section 3.3's indirection-layer use case)."""

import pytest

from repro.common.errors import MVMError
from repro.common.rng import SplitRandom
from repro.mvm.checkpoint import CheckpointManager
from repro.sim.machine import Machine
from repro.tm.ops import Read, Write

from tests.conftest import run_program, spec


def mutate(machine, addr, value, system="SI-TM", seed=1):
    def body():
        yield Write(addr, value)
    run_program(machine, system, [[spec(body, "w")]], seed=seed)


class TestCheckpointReads:
    def test_read_sees_state_at_creation(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        mutate(machine, addr, 10)
        checkpoint = manager.create()
        mutate(machine, addr, 20)
        assert manager.read(checkpoint, addr) == 10
        assert machine.plain_load(addr) == 20

    def test_read_unwritten_is_zero(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        checkpoint = manager.create()
        assert manager.read(checkpoint, addr) == 0

    def test_conventional_region_rejected(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.malloc(1)
        checkpoint = manager.create()
        with pytest.raises(MVMError):
            manager.read(checkpoint, addr)

    def test_checkpoint_pins_versions_against_gc(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        mutate(machine, addr, 1)
        checkpoint = manager.create()
        for value in range(2, 8):
            mutate(machine, addr, value)
        # many later commits; the pinned version must survive
        assert manager.read(checkpoint, addr) == 1


class TestRollback:
    def test_rollback_restores_values(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        mutate(machine, addr, 5)
        checkpoint = manager.create()
        mutate(machine, addr, 6)
        mutate(machine, addr, 7)
        dropped = manager.rollback(checkpoint)
        assert dropped >= 1
        assert machine.plain_load(addr) == 5

    def test_rollback_of_first_write_restores_zero(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        checkpoint = manager.create()
        mutate(machine, addr, 9)
        manager.rollback(checkpoint)
        assert machine.plain_load(addr) == 0

    def test_rollback_spans_lines(self, machine):
        manager = CheckpointManager(machine)
        base = machine.mvmalloc(8 * 4)
        for i in range(4):
            mutate(machine, base + i * 8, 100 + i)
        checkpoint = manager.create()
        for i in range(4):
            mutate(machine, base + i * 8, 200 + i)
        manager.rollback(checkpoint)
        assert [machine.plain_load(base + i * 8) for i in range(4)] == \
            [100, 101, 102, 103]

    def test_rollback_then_continue(self, machine):
        """New work after a rollback proceeds normally."""
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        checkpoint = manager.create()
        mutate(machine, addr, 1)
        manager.rollback(checkpoint)
        mutate(machine, addr, 2)
        assert machine.plain_load(addr) == 2


class TestLifecycle:
    def test_release_unpins(self, machine):
        manager = CheckpointManager(machine)
        checkpoint = manager.create()
        assert manager.live_count == 1
        manager.release(checkpoint)
        assert manager.live_count == 0

    def test_operations_on_released_rejected(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        checkpoint = manager.create()
        manager.release(checkpoint)
        with pytest.raises(MVMError):
            manager.read(checkpoint, addr)
        with pytest.raises(MVMError):
            manager.rollback(checkpoint)
        with pytest.raises(MVMError):
            manager.release(checkpoint)

    def test_nested_checkpoints(self, machine):
        manager = CheckpointManager(machine)
        addr = machine.mvmalloc(1)
        mutate(machine, addr, 1)
        outer = manager.create()
        mutate(machine, addr, 2)
        inner = manager.create()
        mutate(machine, addr, 3)
        assert manager.read(outer, addr) == 1
        assert manager.read(inner, addr) == 2
        manager.rollback(inner)
        assert machine.plain_load(addr) == 2
        manager.release(inner)
        manager.rollback(outer)
        assert machine.plain_load(addr) == 1

    def test_rollback_refused_with_active_transactions(self, machine):
        from repro.tm import SnapshotIsolationTM

        manager = CheckpointManager(machine)
        checkpoint = manager.create()
        tm = SnapshotIsolationTM(machine, SplitRandom(1))
        tm.begin(0, "t", 0)
        with pytest.raises(MVMError):
            manager.rollback(checkpoint)
