"""Section 3.2 overhead-model tests: the paper's arithmetic must fall out."""

import pytest

from repro.common.config import MVMConfig
from repro.mvm.overhead import (
    bandwidth_overhead_best_case,
    capacity_overhead,
    copy_on_write_amplification,
    metadata_bits_per_address,
    report,
)


class TestPaperNumbers:
    """The exact figures quoted in section 3.2."""

    def test_metadata_bits(self):
        # four 32-bit references + four 32-bit timestamps
        assert metadata_bits_per_address(MVMConfig()) == 4 * (32 + 32)

    def test_overhead_full_versions_is_12_5_percent(self):
        # "2 * 32 / 512 = 12.5% per line"
        assert capacity_overhead(MVMConfig(), live_versions=4) == \
            pytest.approx(0.125)

    def test_worst_case_is_50_percent(self):
        # "in the worst case there exists only one active line ... 50%"
        assert capacity_overhead(MVMConfig(), live_versions=1) == \
            pytest.approx(0.50)

    def test_bundling_8_lines_reduces_worst_case_8x(self):
        # "by combining 8 lines into a bundle, the worst case overhead is
        # reduced by a factor of 8 to 6%"
        bundled = capacity_overhead(MVMConfig(bundle_lines=8),
                                    live_versions=1)
        assert bundled == pytest.approx(0.50 / 8)

    def test_bandwidth_best_case_is_12_5_percent(self):
        # "a single cache line contains eight version references ...
        # best case bandwidth increase of 12.5%"
        assert bandwidth_overhead_best_case(MVMConfig()) == \
            pytest.approx(0.125)

    def test_bundle_write_amplification(self):
        assert copy_on_write_amplification(MVMConfig(bundle_lines=8)) == 8
        assert copy_on_write_amplification(MVMConfig()) == 1


class TestReport:
    def test_report_consistency(self):
        rep = report(MVMConfig())
        assert rep.line_bits == 512
        assert rep.entries_per_metadata_line == pytest.approx(8)
        assert rep.overhead_at_full_versions < rep.overhead_worst_case

    def test_invalid_live_versions(self):
        with pytest.raises(ValueError):
            capacity_overhead(MVMConfig(), live_versions=0)

    def test_wider_pointers_cost_more(self):
        narrow = capacity_overhead(MVMConfig(pointer_bits=32), 4)
        wide = capacity_overhead(MVMConfig(pointer_bits=64), 4)
        assert wide > narrow
