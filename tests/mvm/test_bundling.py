"""Bundle copy-on-write accounting tests (section 3.2)."""

from repro.common.config import MVMConfig
from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mvm.controller import MVMController

LINE = MVM_REGION_BASE // 8


def controller(bundle_lines):
    return MVMController(MVMConfig(bundle_lines=bundle_lines), AddressMap(8))


class TestBundleCopies:
    def test_unbundled_never_copies(self):
        mvm = controller(1)
        assert mvm.bundle_copy_lines(LINE) == 0
        assert mvm.bundle_copies == 0

    def test_first_write_copies_rest_of_bundle(self):
        mvm = controller(8)
        assert mvm.bundle_copy_lines(LINE) == 7
        assert mvm.bundle_copies == 1

    def test_second_write_same_bundle_free(self):
        mvm = controller(8)
        mvm.bundle_copy_lines(LINE)
        assert mvm.bundle_copy_lines(LINE) == 0
        assert mvm.bundle_copy_lines(LINE + 3) == 0  # same bundle of 8

    def test_other_bundle_copies_again(self):
        mvm = controller(8)
        mvm.bundle_copy_lines(LINE)
        assert mvm.bundle_copy_lines(LINE + 8) == 7
        assert mvm.bundle_copies == 2

    def test_bundle_boundary(self):
        mvm = controller(4)
        mvm.bundle_copy_lines(LINE)
        # LINE..LINE+3 share a bundle iff aligned; compute the boundary
        bundle = LINE // 4
        same = [l for l in range(LINE, LINE + 8) if l // 4 == bundle]
        other = [l for l in range(LINE, LINE + 8) if l // 4 != bundle]
        for line in same:
            assert mvm.bundle_copy_lines(line) == 0
        assert mvm.bundle_copy_lines(other[0]) == 3
