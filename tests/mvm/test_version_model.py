"""Property-based check of the MVM against a naive reference.

The reference keeps *every* version forever and serves snapshot reads by
linear scan.  The real controller garbage-collects on write and coalesces
versions — the property under test is that **no active snapshot can tell
the difference**: for every pinned snapshot, reads through the real MVM
equal reads through the reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mvm.controller import MVMController

LINE = MVM_REGION_BASE // 8


def data(tag):
    return tuple([tag] * 8)


class ReferenceMVM:
    """Keep-everything multiversion store."""

    def __init__(self):
        self.versions = {}  # line -> list[(ts, data)]

    def install(self, line, ts, payload):
        self.versions.setdefault(line, []).append((ts, payload))

    def read(self, line, snapshot_ts):
        best = None
        for ts, payload in self.versions.get(line, []):
            if ts <= snapshot_ts and (best is None or ts > best[0]):
                best = (ts, payload)
        return best[1] if best else None


# a schedule: interleaved begins (pins), ends (unpins), and commits
events = st.lists(
    st.one_of(
        st.tuples(st.just("begin")),
        st.tuples(st.just("end")),
        st.tuples(st.just("commit"), st.integers(0, 3)),  # line choice
    ),
    min_size=1, max_size=60)


@given(events=events)
@settings(max_examples=80, deadline=None)
def test_gc_and_coalescing_invisible_to_pinned_snapshots(events):
    config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                       coalescing=True)
    mvm = MVMController(config, AddressMap(8))
    reference = ReferenceMVM()
    clock = 0
    pins = []  # active snapshot timestamps, FIFO ended
    for event in events:
        if event[0] == "begin":
            clock += 1
            pins.append(clock)
            mvm.active.add(clock)
        elif event[0] == "end":
            if pins:
                mvm.active.remove(pins.pop(0))
        else:
            _, line_choice = event
            line = LINE + line_choice
            clock += 1
            payload = data(clock)
            mvm.install_line(line, clock, payload)
            reference.install(line, clock, payload)
        # invariant: every live pin reads identically through both stores
        for snapshot in pins:
            for line_choice in range(4):
                line = LINE + line_choice
                assert mvm.snapshot_read(line, snapshot) == \
                    reference.read(line, snapshot), (snapshot, line_choice)
    # and the newest state always agrees
    for line_choice in range(4):
        line = LINE + line_choice
        assert mvm.plain_read(line) == reference.read(line, clock)


@given(events=events)
@settings(max_examples=60, deadline=None)
def test_version_counts_never_exceed_pins_plus_one(events):
    """Coalescing bound: live versions per line <= active pins + 1."""
    config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                       coalescing=True)
    mvm = MVMController(config, AddressMap(8))
    clock = 0
    pins = []
    for event in events:
        if event[0] == "begin":
            clock += 1
            pins.append(clock)
            mvm.active.add(clock)
        elif event[0] == "end":
            if pins:
                mvm.active.remove(pins.pop(0))
        else:
            _, line_choice = event
            clock += 1
            mvm.install_line(LINE + line_choice, clock, data(clock))
            assert mvm.live_version_count(LINE + line_choice) <= \
                len(pins) + 1
