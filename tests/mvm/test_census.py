"""Version-census tests (Table 2 machinery)."""

from repro.mvm.census import VersionCensus


class TestVersionCensus:
    def test_rows_order(self):
        census = VersionCensus()
        assert [r["version"] for r in census.rows()] == \
            ["1st", "2nd", "3rd", "4th", "5th", "tail"]

    def test_record_and_count(self):
        census = VersionCensus()
        for depth in (1, 1, 2, 3):
            census.record(depth)
        assert census.count(1) == 2
        assert census.count(2) == 1
        assert census.total == 4

    def test_deep_accesses_fold_into_tail(self):
        census = VersionCensus()
        census.record(6)
        census.record(7)
        census.record(100)
        rows = {r["version"]: r["accesses"] for r in census.rows()}
        assert rows["tail"] == 3

    def test_invalid_depth_ignored(self):
        census = VersionCensus()
        census.record(0)
        census.record(-3)
        assert census.total == 0

    def test_fraction_deeper_than(self):
        census = VersionCensus()
        for depth in (1, 1, 1, 1, 5):
            census.record(depth)
        assert census.fraction_deeper_than(4) == 0.2
        assert census.fraction_deeper_than(5) == 0.0

    def test_fraction_empty(self):
        assert VersionCensus().fraction_deeper_than(4) == 0.0

    def test_merge(self):
        a, b = VersionCensus(), VersionCensus()
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.count(1) == 2
        assert a.count(2) == 1
