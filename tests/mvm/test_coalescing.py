"""Figure 4's version-coalescing schedule, reproduced step by step.

Five transactions update address A; TX2 starts between TX1's and TX3's
commits and never commits itself.  Versions 1 and 3 coalesce (no
transaction started between them), as do versions 6 and 8; the surviving
version list is exactly {3, 8} — the right-hand side of Figure 4.
"""

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mvm.controller import MVMController

A = MVM_REGION_BASE // 8


def data(tag):
    return tuple([tag] * 8)


def make_controller():
    return MVMController(
        MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED, coalescing=True),
        AddressMap(8))


class TestFigure4:
    def test_exact_schedule(self):
        mvm = make_controller()
        # TX0: start TS=0, write A, commit TS=1
        mvm.active.add(0)
        mvm.active.remove(0)
        mvm.install_line(A, 1, data("tx0"))
        # TX1: start TS=2, write A, commit TS=3 — no start in (1,3):
        # coalesces over version 1
        mvm.active.add(2)
        mvm.active.remove(2)
        mvm.install_line(A, 3, data("tx1"))
        assert mvm.versions_of(A) == (3,)
        # TX2: start TS=4, long running, never commits
        mvm.active.add(4)
        # TX3: start TS=5, write A, commit TS=6 — TX2's start at 4 lies
        # in (3,6): version 3 must be preserved for TX2's snapshot
        mvm.active.add(5)
        mvm.active.remove(5)
        mvm.install_line(A, 6, data("tx3"))
        assert mvm.versions_of(A) == (3, 6)
        # TX4: start TS=7, write A, commit TS=8 — no start in (6,8):
        # coalesces over version 6
        mvm.active.add(7)
        mvm.active.remove(7)
        mvm.install_line(A, 8, data("tx4"))
        assert mvm.versions_of(A) == (3, 8)

    def test_long_runner_still_reads_its_snapshot(self):
        mvm = make_controller()
        mvm.install_line(A, 1, data("tx0"))
        mvm.install_line(A, 3, data("tx1"))
        mvm.active.add(4)
        mvm.install_line(A, 6, data("tx3"))
        mvm.install_line(A, 8, data("tx4"))
        # TX2 (snapshot 4) must still see TX1's value
        assert mvm.snapshot_read(A, 4) == data("tx1")

    def test_coalesced_count(self):
        mvm = make_controller()
        mvm.install_line(A, 1, data(0))
        mvm.install_line(A, 3, data(1))
        mvm.active.add(4)
        mvm.install_line(A, 6, data(2))
        mvm.install_line(A, 8, data(3))
        assert mvm.versions_coalesced == 2

    def test_without_coalescing_four_versions_remain(self):
        mvm = MVMController(
            MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                      coalescing=False),
            AddressMap(8))
        mvm.active.add(0)  # pin all history
        for ts, tag in ((1, 0), (3, 1), (6, 2), (8, 3)):
            mvm.install_line(A, ts, data(tag))
        assert mvm.versions_of(A) == (1, 3, 6, 8)
