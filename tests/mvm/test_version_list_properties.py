"""Property tests for version-list and controller invariants.

Random interleavings of installs, snapshot begins/ends, GC and rollback
are driven against a *full-history* model (every installed version kept,
no coalescing or GC), checking the invariants the oracle relies on:

* version timestamps are strictly increasing;
* a snapshot read never observes a version newer than its start
  timestamp — it returns exactly the model's newest version at or below
  it;
* coalescing and GC-on-write never drop a version a live snapshot still
  needs: what a pinned snapshot reads is stable for its whole lifetime;
* ``truncate_after`` discards exactly the versions newer than the
  cutoff.

Timestamps are generated so a snapshot's start never equals a version's
commit timestamp, mirroring the real clock (``GlobalClock`` hands out
distinct values and stalls starters near in-flight commits).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.common.config import MVMConfig, VersionCapPolicy  # noqa: E402
from repro.mem.address import AddressMap  # noqa: E402
from repro.mvm.controller import MVMController  # noqa: E402
from repro.mvm.timestamps import ActiveTransactionTable  # noqa: E402
from repro.mvm.version_list import VersionList  # noqa: E402

WORDS = 8


def line_data(tag: int):
    return tuple([tag] * WORDS)


steps = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.integers(1, 4)),  # ts gap
        st.tuples(st.just("begin"), st.just(0)),
        st.tuples(st.just("end"), st.integers(0, 11)),     # which snapshot
    ),
    min_size=1, max_size=60)


def drive(ops, coalescing):
    """Run ``ops`` against a VersionList and a full-history model.

    Yields ``(vlist, active, model, snapshots)`` after every step, where
    ``model`` is the complete list of installed ``(ts, data)`` pairs and
    ``snapshots`` maps each live start timestamp to the model version
    index visible to it (-1 = the implicit base).
    """
    config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                       coalescing=coalescing)
    vlist = VersionList()
    active = ActiveTransactionTable()
    model = []           # every (ts, data) ever installed
    snapshots = {}       # live start_ts -> visible model index
    now = 0
    tag = 0
    for op in ops:
        if op[0] == "install":
            now += op[1]
            tag += 1
            vlist.install(now, line_data(tag), config, active)
            model.append((now, line_data(tag)))
        elif op[0] == "begin":
            now += 1
            visible = max((i for i, (ts, _) in enumerate(model)
                           if ts <= now), default=-1)
            active.add(now)
            snapshots[now] = visible
        elif snapshots:
            start_ts = sorted(snapshots)[op[1] % len(snapshots)]
            active.remove(start_ts)
            del snapshots[start_ts]
        yield vlist, active, model, snapshots


@given(ops=steps, coalescing=st.booleans())
@settings(max_examples=120, deadline=None)
def test_version_timestamps_strictly_increase(ops, coalescing):
    for vlist, _, _, _ in drive(ops, coalescing):
        timestamps = vlist.timestamps
        assert all(a < b for a, b in zip(timestamps, timestamps[1:]))


@given(ops=steps, coalescing=st.booleans())
@settings(max_examples=120, deadline=None)
def test_live_snapshots_read_their_version_forever(ops, coalescing):
    # Neither coalescing nor GC-on-write may change what a live snapshot
    # observes, and a snapshot never sees data newer than its start.
    for vlist, _, model, snapshots in drive(ops, coalescing):
        for start_ts, visible in snapshots.items():
            data, _ = vlist.read_at(start_ts)  # must not raise
            if visible < 0:
                assert data is None, "snapshot predates every version"
            else:
                assert data == model[visible][1]


@given(ops=steps, coalescing=st.booleans())
@settings(max_examples=80, deadline=None)
def test_newest_version_is_the_last_installed(ops, coalescing):
    for vlist, _, model, _ in drive(ops, coalescing):
        if model:
            assert vlist.newest_data() == model[-1][1]
            assert vlist.newest_timestamp() == model[-1][0]


controller_steps = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.integers(0, 3),   # line
                  st.integers(1, 4)),                      # ts gap
        st.tuples(st.just("begin"), st.just(0), st.just(0)),
        st.tuples(st.just("end"), st.integers(0, 11), st.just(0)),
    ),
    min_size=1, max_size=50)


def drive_controller(ops):
    """Mirror of :func:`drive` at the MVMController level, multi-line."""
    controller = MVMController(
        MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED),
        AddressMap(WORDS))
    model = {}       # line -> [(ts, data)]
    snapshots = {}   # start_ts -> {line: visible model index}
    now = 0
    tag = 0
    for op in ops:
        if op[0] == "install":
            line = op[1]
            now += op[2]
            tag += 1
            controller.install_line(line, now, line_data(tag))
            model.setdefault(line, []).append((now, line_data(tag)))
        elif op[0] == "begin":
            now += 1
            controller.active.add(now)
            snapshots[now] = {
                line: max((i for i, (ts, _) in enumerate(versions)
                           if ts <= now), default=-1)
                for line, versions in model.items()}
        elif snapshots:
            start_ts = sorted(snapshots)[op[1] % len(snapshots)]
            controller.active.remove(start_ts)
            del snapshots[start_ts]
        yield controller, model, snapshots, now


@given(ops=controller_steps)
@settings(max_examples=100, deadline=None)
def test_controller_snapshot_reads_match_model(ops):
    for controller, model, snapshots, _ in drive_controller(ops):
        for start_ts, view in snapshots.items():
            for line, visible in view.items():
                data = controller.snapshot_read(line, start_ts)
                if visible < 0:
                    assert data is None
                else:
                    assert data == model[line][visible][1]


@given(ops=controller_steps, cut=st.integers(0, 60))
@settings(max_examples=100, deadline=None)
def test_truncate_after_keeps_exactly_older_versions(ops, cut):
    for controller, model, snapshots, now in drive_controller(ops):
        pass  # run to completion, then truncate once
    controller.truncate_after(cut)
    for line, versions in model.items():
        kept = controller.versions_of(line)
        assert all(ts <= cut for ts in kept)
        surviving = [ts for ts, _ in versions if ts <= cut]
        # truncation never drops a version at or below the cutoff that
        # was still live before it ran
        if kept:
            assert set(kept).issubset(set(surviving))
            assert controller.plain_read(line) is not None
