"""Checkpoint pinning vs install/coalesce/GC interleavings.

Property: a pinned checkpoint is a *stable* snapshot — no interleaving
of later installs (which GC and coalesce on write), background sweeps,
or other checkpoints' lifecycles may change what it reads.  Release
unpins: the GC watermark advances and the pinned history becomes
collectable.  Plus the typed rollback error and the one-time
ABORT_WRITER pin warning from :mod:`repro.mvm.checkpoint`.
"""

import warnings

import pytest

import repro.mvm.checkpoint as checkpoint_mod
from repro.common.config import MVMConfig, VersionCapPolicy
from repro.common.errors import CheckpointRollbackError, MVMError
from repro.common.rng import SplitRandom
from repro.mem.address import AddressMap
from repro.mvm.checkpoint import CheckpointManager
from repro.mvm.controller import MVMController
from repro.tm.ops import Write

from tests.conftest import run_program, spec

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

LINES = 4


def mutate(machine, addr, value, system="SI-TM", seed=1):
    def body():
        yield Write(addr, value)
    run_program(machine, system, [[spec(body, "w")]], seed=seed)


def bare(cap_policy=VersionCapPolicy.UNBOUNDED) -> MVMController:
    """A store-shard-style controller: one word per line, no machine."""
    return MVMController(MVMConfig(cap_policy=cap_policy, commit_delta=8),
                         AddressMap(words_per_line=1))


def install(mvm: MVMController, line: int, value: int) -> int:
    """Commit one single-line write through the real clock protocol."""
    end_ts = mvm.clock.begin_commit()
    mvm.install_many(end_ts, [(line, (value,))])
    mvm.clock.finish_commit(end_ts)
    return end_ts


def snapshot_value(mvm: MVMController, line: int, ts: int):
    data = mvm.snapshot_read(line, ts)
    return None if data is None else data[0]


def view(mvm: MVMController, ts: int) -> dict:
    return {line: snapshot_value(mvm, line, ts) for line in range(LINES)}


_INSTALL = st.tuples(st.just("install"), st.integers(0, LINES - 1),
                     st.integers(1, 50))
_OPS = st.lists(st.one_of(_INSTALL, st.just(("sweep",)),
                          st.just(("pin",)), st.just(("unpin",))),
                max_size=40)


@given(prefix=st.lists(_INSTALL, max_size=12), suffix=_OPS)
@settings(max_examples=60, deadline=None)
def test_pinned_reads_stable_under_any_interleaving(prefix, suffix):
    """The paper's O(1) checkpoint: a pin, not a copy — yet immutable.

    ``suffix`` interleaves installs (GC-on-write + coalescing fire per
    install), background sweeps, and the create/release lifecycle of
    *other* checkpoints.  The checkpoint under test must read the same
    image throughout, and releasing it must leave history collectable
    down to one live version per line.
    """
    mvm = bare()
    manager = CheckpointManager.for_controller(mvm)
    for _, line, value in prefix:
        install(mvm, line, value)
    checkpoint = manager.create()
    expected = view(mvm, checkpoint.timestamp)
    others = []
    for op in suffix:
        if op[0] == "install":
            install(mvm, op[1], op[2])
        elif op[0] == "sweep":
            mvm.collect_all()
        elif op[0] == "pin":
            others.append(manager.create())
        elif others:
            manager.release(others.pop())
        assert view(mvm, checkpoint.timestamp) == expected
    for other in others:
        manager.release(other)
    assert view(mvm, checkpoint.timestamp) == expected
    # release unpins: the GC watermark advances past the checkpoint and
    # every version except each line's newest becomes collectable
    manager.release(checkpoint)
    assert manager.live_count == 0
    assert mvm.active.oldest() is None
    mvm.collect_all()
    for line in range(LINES):
        assert mvm.live_version_count(line) <= 1


def test_release_advances_watermark_and_frees_history():
    mvm = bare()
    manager = CheckpointManager.for_controller(mvm)
    install(mvm, 0, 1)
    checkpoint = manager.create()
    for value in range(2, 8):
        install(mvm, 0, value)
    # the pin holds the GC watermark and the pinned version
    assert mvm.active.oldest() == checkpoint.timestamp
    assert snapshot_value(mvm, 0, checkpoint.timestamp) == 1
    before = mvm.live_version_count(0)
    assert before > 1
    manager.release(checkpoint)
    assert mvm.active.oldest() is None
    assert mvm.collect_all() >= before - 1
    assert mvm.live_version_count(0) == 1


def test_advance_repins_forward_only():
    """`advance` is how the store's shards track the publish frontier."""
    mvm = bare()
    manager = CheckpointManager.for_controller(mvm)
    checkpoint = manager.create()
    first = install(mvm, 0, 1)
    advanced = manager.advance(checkpoint, first)
    assert advanced.timestamp == first
    assert manager.live_count == 1
    assert mvm.active.oldest() == first
    # the superseded handle is dead
    with pytest.raises(MVMError):
        manager.release(checkpoint)
    # pins only move forward
    with pytest.raises(MVMError):
        manager.advance(advanced, first - 1)
    # advancing to the same timestamp is a no-op returning the handle
    assert manager.advance(advanced, first) is advanced
    second = install(mvm, 0, 2)
    final = manager.advance(advanced, second)
    manager.release(final)
    assert mvm.active.oldest() is None


def test_for_controller_rejects_word_reads():
    mvm = bare()
    manager = CheckpointManager.for_controller(mvm)
    checkpoint = manager.create()
    with pytest.raises(MVMError, match="machine address map"):
        manager.read(checkpoint, 0)


def test_manager_needs_exactly_one_substrate():
    with pytest.raises(MVMError):
        CheckpointManager()


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_rollback_error_is_typed(machine):
    """In-flight transactions refuse rollback with the typed error."""
    from repro.tm import SnapshotIsolationTM

    manager = CheckpointManager(machine)
    checkpoint = manager.create()
    tm = SnapshotIsolationTM(machine, SplitRandom(1))
    tm.begin(0, "t", 0)
    with pytest.raises(CheckpointRollbackError, match="in flight"):
        manager.rollback(checkpoint)
    # the typed error stays catchable as plain MVMError for old callers
    assert issubclass(CheckpointRollbackError, MVMError)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_rollback_allowed_with_other_checkpoints_pinned(machine):
    """Only *transactions* block rollback; sibling pins do not."""
    manager = CheckpointManager(machine)
    addr = machine.mvmalloc(1)
    mutate(machine, addr, 1)
    checkpoint = manager.create()
    sibling = manager.create()
    mutate(machine, addr, 2)
    manager.rollback(checkpoint)
    assert machine.plain_load(addr) == 1
    manager.release(sibling)


def test_capped_pin_warns_exactly_once():
    """The ABORT_WRITER + pin livelock footgun warns once per process."""
    saved = checkpoint_mod._warned_capped_pin
    try:
        checkpoint_mod._warned_capped_pin = False
        mvm = bare(cap_policy=VersionCapPolicy.ABORT_WRITER)
        manager = CheckpointManager.for_controller(mvm)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager.create()
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)
        assert "ABORT_WRITER" in str(caught[0].message)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager.create()
        assert caught == []
    finally:
        checkpoint_mod._warned_capped_pin = saved


def test_unbounded_pin_does_not_warn():
    saved = checkpoint_mod._warned_capped_pin
    try:
        checkpoint_mod._warned_capped_pin = False
        manager = CheckpointManager.for_controller(bare())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager.create()
        assert caught == []
    finally:
        checkpoint_mod._warned_capped_pin = saved
