"""Dedup-opportunity accounting tests (section 3.3)."""

from repro.common.config import MVMConfig, SimConfig
from repro.mvm.dedup import DedupIndex
from repro.sim.machine import Machine
from repro.tm.ops import Write

from tests.conftest import run_program, spec


def data(tag):
    return tuple([tag] * 8)


class TestDedupIndex:
    def test_first_store_not_duplicate(self):
        index = DedupIndex()
        assert index.add(data(1)) is False

    def test_second_identical_store_deduplicates(self):
        index = DedupIndex()
        index.add(data(1))
        assert index.add(data(1)) is True

    def test_report_counts(self):
        index = DedupIndex()
        index.add(data(1))
        index.add(data(1))
        index.add(data(2))
        report = index.report()
        assert report.total_lines == 3
        assert report.unique_lines == 2
        assert report.saved_lines == 1
        assert report.savings_fraction == 1 / 3

    def test_zero_line_tracked(self):
        index = DedupIndex(words_per_line=8)
        index.add(tuple([0] * 8))
        index.add(tuple([0] * 8))
        assert index.report().zero_lines == 2

    def test_remove(self):
        index = DedupIndex()
        index.add(data(1))
        index.add(data(1))
        index.remove(data(1))
        assert index.report().total_lines == 1
        index.remove(data(1))
        assert index.report().unique_lines == 0

    def test_empty_report(self):
        report = DedupIndex().report()
        assert report.total_lines == 0
        assert report.savings_fraction == 0.0


class TestControllerIntegration:
    def test_disabled_by_default(self, machine):
        assert machine.mvm.dedup is None

    def test_records_installed_versions(self):
        machine = Machine(SimConfig(mvm=MVMConfig(dedup=True)))
        addr = machine.mvmalloc(1)

        def write_value(value):
            def body():
                yield Write(addr, value)
            return body

        # two different transactions commit the SAME line contents
        run_program(machine, "SI-TM",
                    [[spec(write_value(7), "a"), spec(write_value(7), "b")]])
        report = machine.mvm.dedup.report()
        assert report.total_lines == 2
        assert report.unique_lines == 1
        assert report.saved_lines == 1
