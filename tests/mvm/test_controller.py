"""MVM controller tests: snapshot reads, commit protocol, transients."""

import pytest

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.common.errors import MVMError
from repro.mem.address import MVM_REGION_BASE, AddressMap
from repro.mem.backing import BackingStore
from repro.mvm.controller import MVMController
from repro.mvm.version_list import CapExceeded

LINE = MVM_REGION_BASE // 8  # a line id in the MVM region


def controller(**kwargs):
    return MVMController(MVMConfig(**kwargs), AddressMap(8))


def data(tag):
    return tuple([tag] * 8)


class TestSnapshotRead:
    def test_unwritten_line_reads_none(self):
        assert controller().snapshot_read(LINE, 100) is None

    def test_read_at_snapshot(self):
        mvm = controller()
        mvm.active.add(5)    # pin history: live snapshots protect versions
        mvm.install_line(LINE, 10, data(1))
        mvm.active.add(15)
        mvm.install_line(LINE, 20, data(2))
        assert mvm.snapshot_read(LINE, 15) == data(1)
        assert mvm.snapshot_read(LINE, 25) == data(2)

    def test_census_disabled_by_default(self):
        assert controller().census is None

    def test_census_records_depths(self):
        mvm = controller(census=True)
        mvm.active.add(5)
        mvm.install_line(LINE, 10, data(1))
        mvm.active.add(15)
        mvm.install_line(LINE, 20, data(2))
        mvm.snapshot_read(LINE, 25)   # depth 1
        mvm.snapshot_read(LINE, 15)   # depth 2
        assert mvm.census.count(1) == 1
        assert mvm.census.count(2) == 1


class TestCommitProtocol:
    def test_validate_detects_newer_version(self):
        mvm = controller()
        mvm.install_line(LINE, 10, data(1))
        assert mvm.validate_line(LINE, 5)       # newer than snapshot 5
        assert not mvm.validate_line(LINE, 10)  # not newer than 10
        assert mvm.ww_conflicts_detected == 1

    def test_validate_unwritten_line_clean(self):
        assert not controller().validate_line(LINE, 5)

    def test_install_and_rollback(self):
        mvm = controller()
        mvm.active.add(5)
        mvm.install_line(LINE, 10, data(1))
        mvm.active.add(15)
        mvm.install_line(LINE, 20, data(2))
        mvm.rollback_line(LINE, 20)
        assert mvm.versions_of(LINE) == (10,)
        assert mvm.versions_installed == 1

    def test_rollback_without_versions_rejected(self):
        with pytest.raises(MVMError):
            controller().rollback_line(LINE, 10)

    def test_cap_exceeded_propagates(self):
        mvm = controller(max_versions=1, coalescing=False)
        mvm.active.add(1)
        mvm.active.add(11)
        mvm.install_line(LINE, 10, data(1))
        with pytest.raises(CapExceeded):
            mvm.install_line(LINE, 20, data(2))

    def test_coalescing_counter(self):
        mvm = controller(coalescing=True)
        mvm.install_line(LINE, 10, data(1))
        mvm.install_line(LINE, 20, data(2))
        assert mvm.versions_coalesced == 1


class TestWordGranularity:
    def test_disjoint_words_filtered(self):
        mvm = controller()
        mvm.active.add(5)
        mvm.install_line(LINE, 10, data(0))
        mvm.active.add(15)
        newer = list(data(0))
        newer[0] = 99                      # concurrent writer changed word 0
        mvm.install_line(LINE, 20, tuple(newer))
        # we wrote word 3 only -> false sharing, filtered
        assert not mvm.words_conflict(LINE, 15, {3: 7})
        assert mvm.ww_conflicts_filtered == 1

    def test_overlapping_words_conflict(self):
        mvm = controller()
        mvm.active.add(5)
        mvm.install_line(LINE, 10, data(0))
        mvm.active.add(15)
        newer = list(data(0))
        newer[3] = 99
        mvm.install_line(LINE, 20, tuple(newer))
        assert mvm.words_conflict(LINE, 15, {3: 7})

    def test_silent_store_filtered(self):
        mvm = controller()
        mvm.active.add(5)
        mvm.install_line(LINE, 10, data(0))
        mvm.active.add(15)
        newer = list(data(0))
        newer[2] = 55
        mvm.install_line(LINE, 20, tuple(newer))
        # our "write" stores the snapshot's existing value: a silent store
        assert not mvm.words_conflict(LINE, 15, {4: 0})


class TestPlainAccess:
    def test_plain_write_then_read(self):
        mvm = controller()
        mvm.plain_write(LINE, data(5))
        assert mvm.plain_read(LINE) == data(5)

    def test_plain_write_updates_newest_in_place(self):
        mvm = controller()
        mvm.install_line(LINE, 10, data(1))
        mvm.plain_write(LINE, data(9))
        assert mvm.versions_of(LINE) == (10,)
        assert mvm.snapshot_read(LINE, 15) == data(9)


class TestTransients:
    def test_owner_visibility(self):
        mvm = controller()
        mvm.store_transient(LINE, owner=1, data=data(3))
        assert mvm.load_transient(LINE, owner=1) == data(3)
        assert mvm.load_transient(LINE, owner=2) is None

    def test_drop(self):
        mvm = controller()
        mvm.store_transient(LINE, owner=1, data=data(3))
        mvm.drop_transients(1, [LINE])
        assert mvm.load_transient(LINE, owner=1) is None


class TestMaintenance:
    def test_collect_all(self):
        mvm = controller(coalescing=False,
                         cap_policy=VersionCapPolicy.UNBOUNDED)
        mvm.active.add(1)
        for ts in (10, 20, 30):
            mvm.install_line(LINE, ts, data(ts))
        mvm.active.remove(1)
        dropped = mvm.collect_all()
        assert dropped == 2
        assert mvm.versions_of(LINE) == (30,)

    def test_flush_requires_no_active(self):
        mvm = controller()
        mvm.active.add(1)
        with pytest.raises(MVMError):
            mvm.flush_all_versions(BackingStore())

    def test_flush_persists_newest(self):
        mvm = controller()
        mvm.install_line(LINE, 10, data(7))
        backing = BackingStore()
        mvm.flush_all_versions(backing)
        words = AddressMap(8).words_of_line(LINE)
        assert backing.load_line(words) == data(7)
        # the newest data survives as a fresh timestamp-0 base version so
        # post-reset snapshots still read it; history is gone
        assert mvm.versions_of(LINE) == (0,)
        assert mvm.plain_read(LINE) == data(7)
        assert mvm.clock.now == 0

    def test_stats_shape(self):
        stats = controller().stats()
        for key in ("versions_installed", "versions_coalesced",
                    "ww_conflicts_detected", "max_live_versions"):
            assert key in stats
