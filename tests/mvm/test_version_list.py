"""Version-list tests: snapshot reads, GC, cap policies, base version."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import MVMConfig, VersionCapPolicy
from repro.common.errors import MVMError
from repro.mvm.timestamps import ActiveTransactionTable
from repro.mvm.version_list import CapExceeded, SnapshotTooOld, VersionList

LINE = tuple(range(8))


def data(tag: int):
    return tuple([tag] * 8)


def fresh(coalescing=False, policy=VersionCapPolicy.ABORT_WRITER,
          max_versions=4):
    config = MVMConfig(max_versions=max_versions, cap_policy=policy,
                       coalescing=coalescing)
    return VersionList(), config, ActiveTransactionTable()


class TestSnapshotReads:
    def test_empty_list_reads_nothing(self):
        vlist = VersionList()
        assert vlist.read_at(100) == (None, 0)

    def test_reads_newest_at_or_below_snapshot(self):
        vlist, config, active = fresh()
        for ts in (10, 20, 30):
            vlist.install(ts, data(ts), config, active)
        assert vlist.read_at(25) == (data(20), 2)
        assert vlist.read_at(30) == (data(30), 1)
        assert vlist.read_at(1000) == (data(30), 1)

    def test_depth_counts_from_newest(self):
        vlist, config, active = fresh()
        active.add(5)  # pin history against GC-on-write
        for ts in (10, 20, 30):
            vlist.install(ts, data(ts), config, active)
        assert vlist.read_at(10)[1] == 3

    def test_implicit_base_version_readable(self):
        # A snapshot older than the first transactional version sees the
        # pre-transactional contents (None = zero line).
        vlist, config, active = fresh()
        vlist.install(10, data(10), config, active)
        assert vlist.read_at(5) == (None, 2)

    def test_base_gone_after_drop_oldest(self):
        vlist, config, active = fresh(policy=VersionCapPolicy.DROP_OLDEST,
                                      max_versions=2)
        for ts in (10, 20, 30):
            vlist.install(ts, data(ts), config, active)
        with pytest.raises(SnapshotTooOld):
            vlist.read_at(15)


class TestInstall:
    def test_timestamps_must_increase(self):
        vlist, config, active = fresh()
        vlist.install(10, data(1), config, active)
        with pytest.raises(MVMError):
            vlist.install(10, data(2), config, active)

    def test_cap_aborts_writer(self):
        vlist, config, active = fresh(max_versions=2)
        active.add(5)       # pin history: GC must retain versions
        active.add(15)
        active.add(25)
        vlist.install(10, data(1), config, active)
        vlist.install(20, data(2), config, active)
        with pytest.raises(CapExceeded):
            vlist.install(30, data(3), config, active)

    def test_cap_drop_oldest(self):
        vlist, config, active = fresh(policy=VersionCapPolicy.DROP_OLDEST,
                                      max_versions=2)
        active.add(5)
        active.add(15)
        active.add(25)
        vlist.install(10, data(1), config, active)
        vlist.install(20, data(2), config, active)
        vlist.install(30, data(3), config, active)
        assert vlist.timestamps == (20, 30)

    def test_unbounded(self):
        vlist, config, active = fresh(policy=VersionCapPolicy.UNBOUNDED,
                                      max_versions=2)
        active.add(1)
        for i, ts in enumerate(range(10, 110, 10)):
            vlist.install(ts, data(i), config, active)
        assert len(vlist) == 10


class TestGarbageCollection:
    def test_gc_keeps_snapshot_visible_version(self):
        vlist, config, active = fresh()
        active.add(5)  # pin history so all three versions survive install
        vlist.install(10, data(1), config, active)
        vlist.install(20, data(2), config, active)
        vlist.install(30, data(3), config, active)
        dropped = vlist.collect_garbage(oldest_active=25)
        # version 20 is the newest <= 25 and must survive; 10 is obsolete
        assert dropped == 1
        assert vlist.timestamps == (20, 30)
        assert vlist.read_at(25) == (data(2), 2)

    def test_gc_no_active_keeps_only_newest(self):
        vlist, config, active = fresh()
        vlist.install(10, data(1), config, active)
        vlist.install(20, data(2), config, active)
        assert vlist.collect_garbage(None) == 1
        assert vlist.timestamps == (20,)

    def test_gc_on_install(self):
        vlist, config, active = fresh()
        vlist.install(10, data(1), config, active)
        vlist.install(20, data(2), config, active)
        # no active transactions: installing GCs obsolete history
        _, dropped = vlist.install(30, data(3), config, active)
        assert dropped >= 1


class TestCoalescing:
    def test_coalesces_without_intervening_start(self):
        vlist, config, active = fresh(coalescing=True)
        active.add(5)  # older than both versions: does not block
        vlist.install(10, data(1), config, active)
        coalesced, _ = vlist.install(20, data(2), config, active)
        assert coalesced
        assert vlist.timestamps == (20,)

    def test_intervening_start_blocks_coalescing(self):
        vlist, config, active = fresh(coalescing=True)
        active.add(5)
        vlist.install(10, data(1), config, active)
        active.add(15)  # started between version 10 and the new one
        coalesced, _ = vlist.install(20, data(2), config, active)
        assert not coalesced
        assert vlist.timestamps == (10, 20)
        # the pinned snapshot still reads the old version
        assert vlist.read_at(15) == (data(1), 2)

    def test_disabled_coalescing_appends(self):
        vlist, config, active = fresh(coalescing=False)
        active.add(5)
        vlist.install(10, data(1), config, active)
        coalesced, _ = vlist.install(20, data(2), config, active)
        assert not coalesced


class TestRollback:
    def test_remove_version(self):
        vlist, config, active = fresh()
        active.add(5)
        vlist.install(10, data(1), config, active)
        active.add(15)
        vlist.install(20, data(2), config, active)
        vlist.remove_version(20)
        assert vlist.timestamps == (10,)

    def test_remove_unknown_rejected(self):
        vlist, config, active = fresh()
        vlist.install(10, data(1), config, active)
        with pytest.raises(MVMError):
            vlist.remove_version(11)


class TestNonTransactional:
    def test_overwrite_in_place_empty(self):
        vlist = VersionList()
        vlist.overwrite_in_place(data(7))
        assert vlist.newest_data() == data(7)
        assert vlist.timestamps == (0,)

    def test_overwrite_in_place_updates_newest(self):
        vlist, config, active = fresh()
        vlist.install(10, data(1), config, active)
        vlist.overwrite_in_place(data(9))
        assert vlist.newest_data() == data(9)
        assert vlist.timestamps == (10,)


class TestProperties:
    """Property-based invariants over arbitrary install sequences."""

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=40, unique=True),
           st.lists(st.integers(min_value=0, max_value=200), max_size=6,
                    unique=True))
    @settings(max_examples=120, deadline=None)
    def test_snapshot_reads_are_consistent(self, stamps, actives):
        """Reading at any snapshot returns the newest surviving version at
        or below it; version timestamps stay sorted and bounded."""
        config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED)
        vlist = VersionList()
        active = ActiveTransactionTable()
        for ts in actives:
            active.add(ts)
        for ts in sorted(stamps):
            vlist.install(ts, data(ts), config, active)
        timestamps = vlist.timestamps
        assert list(timestamps) == sorted(timestamps)
        for snapshot in range(0, 201, 17):
            visible = [t for t in timestamps if t <= snapshot]
            try:
                value, depth = vlist.read_at(snapshot)
            except SnapshotTooOld:
                assert not visible
                continue
            if visible:
                assert value == data(visible[-1])
                assert depth == len(timestamps) - len(visible) + 1

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                    max_size=30, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_coalescing_bounds_versions_by_active_count(self, stamps):
        """With coalescing on, live versions never exceed the number of
        distinct active snapshots + 1 (section 3.1's bound)."""
        config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED,
                           coalescing=True)
        vlist = VersionList()
        active = ActiveTransactionTable()
        active.add(0)
        active.add(50)
        for ts in sorted(stamps):
            vlist.install(ts + 100, data(ts), config, active)
        assert len(vlist) <= len(active) + 1

    @given(st.lists(st.integers(min_value=1, max_value=300), min_size=2,
                    max_size=40, unique=True),
           st.integers(min_value=1, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_gc_preserves_oldest_active_view(self, stamps, oldest):
        """GC never changes what the oldest active snapshot reads."""
        config = MVMConfig(cap_policy=VersionCapPolicy.UNBOUNDED)
        vlist = VersionList()
        active = ActiveTransactionTable()
        for ts in sorted(stamps):
            vlist.install(ts, data(ts), config, active)
        try:
            before = vlist.read_at(oldest)[0]
        except SnapshotTooOld:
            before = "too-old"
        vlist.collect_garbage(oldest)
        try:
            after = vlist.read_at(oldest)[0]
        except SnapshotTooOld:
            after = "too-old"
        assert before == after


class TestTruncateAfter:
    def test_truncates_newer_versions(self):
        vlist, config, active = fresh()
        active.add(5)
        for ts in (10, 20, 30):
            vlist.install(ts, data(ts), config, active)
        dropped = vlist.truncate_after(20)
        assert dropped == 1
        assert vlist.timestamps == (10, 20)

    def test_truncate_everything(self):
        vlist, config, active = fresh()
        active.add(5)
        vlist.install(10, data(1), config, active)
        assert vlist.truncate_after(5) == 1
        assert len(vlist) == 0

    def test_truncate_noop(self):
        vlist, config, active = fresh()
        active.add(5)
        vlist.install(10, data(1), config, active)
        assert vlist.truncate_after(50) == 0
        assert vlist.timestamps == (10,)

    def test_reads_after_truncate(self):
        vlist, config, active = fresh()
        active.add(5)
        vlist.install(10, data(1), config, active)
        active.add(15)
        vlist.install(20, data(2), config, active)
        vlist.truncate_after(10)
        assert vlist.read_at(100) == (data(1), 1)
