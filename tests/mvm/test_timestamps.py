"""Global clock and Δ-commit protocol tests (sections 4.1, 4.2)."""

import pytest

from repro.common.errors import MVMError, TimestampOverflowError
from repro.mvm.timestamps import ActiveTransactionTable, GlobalClock


class TestGlobalClock:
    def test_start_timestamps_unique_and_increasing(self):
        clock = GlobalClock()
        stamps = [clock.next_start() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_commit_reserves_delta(self):
        clock = GlobalClock(delta=8)
        end = clock.begin_commit()
        assert end == clock.now - 1 + 8

    def test_starts_during_commit_stay_below_end(self):
        clock = GlobalClock(delta=8)
        end = clock.begin_commit()
        for _ in range(6):  # delta - 2 starts fit
            ts = clock.next_start()
            assert ts is not None and ts < end

    def test_delta_plus_one_start_stalls(self):
        clock = GlobalClock(delta=4)
        clock.begin_commit()
        starts = [clock.next_start() for _ in range(5)]
        assert None in starts
        assert clock.start_stalls >= 1

    def test_finish_commit_jumps_clock(self):
        clock = GlobalClock(delta=8)
        end = clock.begin_commit()
        clock.finish_commit(end)
        assert clock.now == end

    def test_stall_clears_after_commit_finishes(self):
        clock = GlobalClock(delta=2)
        end = clock.begin_commit()
        clock.next_start()
        assert clock.next_start() is None
        clock.finish_commit(end)
        assert clock.next_start() is not None

    def test_abandon_commit_releases_reservation(self):
        clock = GlobalClock(delta=2)
        end = clock.begin_commit()
        clock.next_start()
        assert clock.next_start() is None
        clock.abandon_commit(end)
        assert clock.next_start() is not None

    def test_concurrent_commits_ordered_reservations(self):
        clock = GlobalClock(delta=16)
        e1 = clock.begin_commit()
        e2 = clock.begin_commit()
        assert e2 > e1
        clock.finish_commit(e1)
        clock.finish_commit(e2)
        assert clock.now == e2

    def test_finish_unknown_commit_rejected(self):
        with pytest.raises(MVMError):
            GlobalClock().finish_commit(42)

    def test_invalid_delta_rejected(self):
        with pytest.raises(MVMError):
            GlobalClock(delta=0)

    def test_overflow_on_start(self):
        clock = GlobalClock(max_timestamp=2)
        clock.next_start()
        clock.next_start()
        with pytest.raises(TimestampOverflowError):
            clock.next_start()

    def test_overflow_on_commit_reservation(self):
        clock = GlobalClock(delta=100, max_timestamp=50)
        with pytest.raises(TimestampOverflowError):
            clock.begin_commit()

    def test_reset_after_overflow(self):
        clock = GlobalClock(max_timestamp=2)
        clock.next_start()
        clock.reset_after_overflow()
        assert clock.now == 0
        assert clock.next_start() == 1


class TestActiveTransactionTable:
    def test_oldest(self):
        table = ActiveTransactionTable()
        table.add(5)
        table.add(3)
        table.add(9)
        assert table.oldest() == 3

    def test_remove_updates_oldest(self):
        table = ActiveTransactionTable()
        table.add(3)
        table.add(5)
        table.remove(3)
        assert table.oldest() == 5

    def test_empty_oldest_none(self):
        assert ActiveTransactionTable().oldest() is None

    def test_remove_unknown_rejected(self):
        with pytest.raises(MVMError):
            ActiveTransactionTable().remove(1)

    def test_any_started_in_open_interval(self):
        table = ActiveTransactionTable()
        table.add(5)
        assert table.any_started_in(4, 6)
        assert not table.any_started_in(5, 9)   # exclusive lower bound
        assert not table.any_started_in(1, 5)   # exclusive upper bound

    def test_contains_and_len(self):
        table = ActiveTransactionTable()
        table.add(7)
        table.add(7)
        assert 7 in table
        assert len(table) == 2
        table.remove(7)
        assert 7 in table
