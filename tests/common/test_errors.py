"""Abort-cause taxonomy tests (the Figure 1 classification)."""

import pytest

from repro.common.errors import (
    AbortCause,
    ReproError,
    StructureCorrupted,
    TimestampOverflowError,
    TransactionAborted,
)


class TestAbortCauseClassification:
    def test_read_write_class(self):
        assert AbortCause.READ_WRITE.is_read_write
        assert AbortCause.DANGEROUS_STRUCTURE.is_read_write

    def test_write_write_class(self):
        assert AbortCause.WRITE_WRITE.is_write_write
        assert not AbortCause.WRITE_WRITE.is_read_write

    def test_resource_causes_neither(self):
        for cause in (AbortCause.VERSION_OVERFLOW,
                      AbortCause.SNAPSHOT_TOO_OLD,
                      AbortCause.VERSION_BUFFER_OVERFLOW,
                      AbortCause.TIMESTAMP_OVERFLOW,
                      AbortCause.EXPLICIT):
            assert not cause.is_read_write
            assert not cause.is_write_write

    def test_son_range_counts_as_neither(self):
        # SONTM range-empty aborts mix read and write constraints; the
        # Figure 1 split only applies to the 2PL baseline.
        assert not AbortCause.SON_RANGE_EMPTY.is_read_write
        assert not AbortCause.SON_RANGE_EMPTY.is_write_write


class TestTransactionAborted:
    def test_carries_cause_and_detail(self):
        exc = TransactionAborted(AbortCause.WRITE_WRITE, "line 0x40")
        assert exc.cause is AbortCause.WRITE_WRITE
        assert "line 0x40" in str(exc)
        assert "write-write" in str(exc)

    def test_not_a_library_error(self):
        # control flow, not an error: must not be swallowed by
        # `except ReproError` handlers
        assert not issubclass(TransactionAborted, ReproError)


class TestHierarchy:
    def test_library_errors_share_base(self):
        assert issubclass(TimestampOverflowError, ReproError)
        assert issubclass(StructureCorrupted, ReproError)
