"""Configuration tests: Table 1 fidelity and validation."""

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    ConflictGranularity,
    MachineConfig,
    MVMConfig,
    SimConfig,
    TMConfig,
    VersionCapPolicy,
    table1_dict,
)
from repro.common.errors import ConfigError


class TestTable1:
    """Defaults must reproduce the paper's Table 1 exactly."""

    def test_cores(self):
        assert MachineConfig().cores == 32

    def test_clock(self):
        assert MachineConfig().clock_ghz == 3.0

    def test_l1(self):
        m = MachineConfig()
        assert m.l1d.size_bytes == 32 * 1024
        assert m.l1d.associativity == 4
        assert m.l1d.latency_cycles == 4

    def test_l2(self):
        m = MachineConfig()
        assert m.l2.size_bytes == 256 * 1024
        assert m.l2.associativity == 8
        assert m.l2.latency_cycles == 8

    def test_l3(self):
        m = MachineConfig()
        assert m.l3.size_bytes == 32 * 1024 * 1024
        assert m.l3.associativity == 16
        assert m.l3.latency_cycles == 30

    def test_mvm_partition(self):
        assert MachineConfig().l3_mvm_partition_bytes == 8 * 1024 * 1024

    def test_memory(self):
        m = MachineConfig()
        assert m.memory_controllers == 4
        assert m.memory_bandwidth_gbps == 10.0
        assert m.memory_latency_cycles == 100

    def test_table1_dict_complete(self):
        table = table1_dict()
        assert table["CPU Cores"] == 32
        assert table["L3 MVM partition (MB)"] == 8
        assert len(table) == 15


class TestCacheConfig:
    def test_num_lines(self):
        c = CacheConfig(size_bytes=32 * 1024, associativity=4,
                        latency_cycles=4)
        assert c.num_lines == 512
        assert c.num_sets == 128

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, associativity=3, latency_cycles=1)


class TestMachineConfig:
    def test_words_per_line(self):
        assert MachineConfig().words_per_line == 8

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(cores=0)

    def test_line_word_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(word_bytes=7)

    def test_mixed_line_sizes_rejected(self):
        bad_l1 = CacheConfig(size_bytes=32 * 1024, associativity=4,
                             latency_cycles=4, line_bytes=32)
        with pytest.raises(ConfigError):
            MachineConfig(l1d=bad_l1)

    def test_scaled_shrinks_caches(self):
        scaled = MachineConfig().scaled(0.25)
        assert scaled.l1d.num_lines == 128
        assert scaled.l1d.num_lines % scaled.l1d.associativity == 0
        assert scaled.l3_mvm_partition_bytes == 2 * 1024 * 1024

    def test_scaled_preserves_associativity_floor(self):
        scaled = MachineConfig().scaled(1e-9)
        assert scaled.l1d.num_lines >= scaled.l1d.associativity

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().cores = 64


class TestMVMConfig:
    def test_defaults_match_paper(self):
        c = MVMConfig()
        assert c.max_versions == 4
        assert c.pointer_bits == 32
        assert c.timestamp_bits == 32
        assert c.coalescing is True
        assert c.cap_policy is VersionCapPolicy.ABORT_WRITER

    def test_invalid_versions(self):
        with pytest.raises(ConfigError):
            MVMConfig(max_versions=0)

    def test_invalid_bundle(self):
        with pytest.raises(ConfigError):
            MVMConfig(bundle_lines=0)

    def test_invalid_delta(self):
        with pytest.raises(ConfigError):
            MVMConfig(commit_delta=0)


class TestTMConfig:
    def test_defaults(self):
        c = TMConfig()
        assert c.granularity is ConflictGranularity.LINE
        assert c.backoff_enabled is True
        assert c.version_buffer_lines == 0

    def test_invalid_backoff(self):
        with pytest.raises(ConfigError):
            TMConfig(backoff_base_cycles=0)
        with pytest.raises(ConfigError):
            TMConfig(backoff_max_exponent=-1)


class TestSimConfig:
    def test_replace(self):
        c = SimConfig().replace(compute_cycles=3)
        assert c.compute_cycles == 3
        assert SimConfig().compute_cycles == 1


class TestSerialization:
    """to_dict/from_dict/fingerprint back the experiment cache keys."""

    def test_round_trip_default(self):
        config = SimConfig()
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_round_trip_non_default(self):
        config = SimConfig(
            machine=dataclasses.replace(MachineConfig(), cores=8,
                                        interconnect="bus"),
            mvm=MVMConfig(cap_policy=VersionCapPolicy.DROP_OLDEST,
                          census=True, bundle_lines=8),
            tm=TMConfig(granularity=ConflictGranularity.WORD,
                        backoff_enabled=False),
            compute_cycles=2)
        recovered = SimConfig.from_dict(config.to_dict())
        assert recovered == config
        assert recovered.mvm.cap_policy is VersionCapPolicy.DROP_OLDEST
        assert recovered.tm.granularity is ConflictGranularity.WORD

    def test_to_dict_is_json_safe(self):
        import json

        json.dumps(SimConfig().to_dict())

    def test_fingerprint_stable(self):
        assert SimConfig().fingerprint() == SimConfig().fingerprint()

    def test_fingerprint_sensitive_to_any_field(self):
        base = SimConfig().fingerprint()
        assert SimConfig(compute_cycles=2).fingerprint() != base
        assert SimConfig(mvm=MVMConfig(max_versions=2)).fingerprint() != base
        assert SimConfig(machine=dataclasses.replace(
            MachineConfig(), cores=8)).fingerprint() != base

    def test_from_dict_validates(self):
        data = SimConfig().to_dict()
        data["mvm"]["max_versions"] = 0
        with pytest.raises(ConfigError):
            SimConfig.from_dict(data)

    def test_default_dict_omits_faults_and_retry(self):
        # omitted-when-None: pre-faults config fingerprints (and with
        # them every cache key and bench baseline) must not move
        data = SimConfig().to_dict()
        assert "faults" not in data and "retry" not in data

    def test_default_dict_omits_unset_capacity_limits(self):
        # same invariant for the capacity knobs: zero (unbounded) limits
        # stay out of the serialized dict, so pre-capacity fingerprints,
        # cache keys and the bench baseline are all unmoved
        data = SimConfig().to_dict()["tm"]
        for key in ("read_set_limit", "write_set_limit",
                    "version_buffer_limit", "hybrid_hw_attempts"):
            assert key not in data, key

    def test_capacity_limits_round_trip(self):
        from repro.common.config import TMConfig

        config = SimConfig(tm=TMConfig(read_set_limit=8, write_set_limit=4,
                                       version_buffer_limit=16,
                                       hybrid_hw_attempts=3))
        recovered = SimConfig.from_dict(config.to_dict())
        assert recovered == config
        assert recovered.tm.version_buffer_limit == 16
        assert config.fingerprint() != SimConfig().fingerprint()

    def test_faults_and_retry_round_trip(self):
        from repro.faults import FaultPlan
        from repro.sim.retry import RetryPolicy

        config = SimConfig(
            faults=FaultPlan(abort_rate=0.5, overflow_at_commits=(2,)),
            retry=RetryPolicy(attempt_budget=3, escalation=False))
        recovered = SimConfig.from_dict(config.to_dict())
        assert recovered == config
        assert recovered.faults.overflow_at_commits == (2,)
        assert recovered.retry.escalation is False
        assert config.fingerprint() != SimConfig().fingerprint()

    def test_faulted_config_from_dict_validates(self):
        data = SimConfig(retry=None).to_dict()
        data["faults"] = {"abort_rate": 7.0}
        with pytest.raises(ConfigError):
            SimConfig.from_dict(data)
