"""Deterministic RNG tests."""

import pytest

from repro.common.rng import SplitRandom, derive_seed, seeds_for_runs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_paths(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_roots(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit(self):
        assert 0 <= derive_seed(99, "x") < 2 ** 64


class TestSplitRandom:
    def test_same_seed_same_stream(self):
        a, b = SplitRandom(5), SplitRandom(5)
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_split_is_keyed_not_sequential(self):
        a = SplitRandom(5)
        a.random()  # consume some state
        b = SplitRandom(5)
        assert a.split("child").random() == b.split("child").random()

    def test_split_children_independent(self):
        root = SplitRandom(5)
        assert root.split("x").random() != root.split("y").random()

    def test_nested_split_path(self):
        root = SplitRandom(5)
        assert root.split("a").split("b").path == ("a", "b")

    def test_distinct_values(self):
        values = SplitRandom(5).distinct(10, 0, 100)
        assert len(values) == 10
        assert len(set(values)) == 10
        assert all(0 <= v < 100 for v in values)

    def test_distinct_impossible(self):
        with pytest.raises(ValueError):
            SplitRandom(5).distinct(11, 0, 10)

    def test_weighted_choice_respects_zero_weight(self):
        rng = SplitRandom(5)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"a"}


class TestSeedsForRuns:
    def test_count_and_determinism(self):
        a = list(seeds_for_runs(7, 5))
        b = list(seeds_for_runs(7, 5))
        assert len(a) == 5
        assert a == b
        assert len(set(a)) == 5
