"""Cross-system semantic equivalence properties.

With a single thread there is no concurrency, so every TM system must
produce the *identical* final memory state for the same program — the
policies differ only in how they resolve concurrency.  Hypothesis drives
random programs over a transactional hash map and checks all four systems
against a plain-dict model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import SplitRandom
from repro.sim.machine import Machine
from repro.structures import TxHashMap, TxLinkedList
from repro.tm import SYSTEMS

from tests.conftest import run_program, spec

op_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "remove", "inc"]),
              st.integers(0, 12), st.integers(0, 9)),
    min_size=1, max_size=40)


class TestSingleThreadEquivalence:
    @given(ops=op_strategy)
    @settings(max_examples=25, deadline=None)
    def test_all_systems_match_dict_model(self, ops):
        outcomes = {}
        for system in SYSTEMS:
            machine = Machine()
            table = TxHashMap(machine, buckets=4)
            model = {}
            specs = []
            for op, key, value in ops:
                if op == "put":
                    specs.append(spec(
                        lambda k=key, v=value: table.put(k, v), "put"))
                    model[key] = value
                elif op == "remove":
                    specs.append(spec(lambda k=key: table.remove(k), "rm"))
                    model.pop(key, None)
                else:
                    specs.append(spec(
                        lambda k=key, v=value: table.increment(k, v), "inc"))
                    model[key] = model.get(key, 0) + value
            stats = run_program(machine, system, [specs])
            assert stats.total_aborts == 0, system
            assert table.to_dict() == model, system
            outcomes[system] = table.to_dict()
        assert len({frozenset(o.items()) for o in outcomes.values()}) == 1

    @given(keys=st.lists(st.integers(0, 30), min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_list_single_thread_identical(self, keys):
        final = {}
        for system in SYSTEMS:
            machine = Machine()
            lst = TxLinkedList(machine, skew_safe=True)
            specs = [spec(lambda k=k: lst.insert(k), "ins") for k in keys]
            run_program(machine, system, [specs])
            final[system] = tuple(lst.to_list())
        assert len(set(final.values())) == 1
        assert final["SI-TM"] == tuple(sorted(set(keys)))


class TestConcurrentAgreementOnCommutativeWork:
    """Commutative disjoint updates: all systems agree on the final state
    even concurrently (only timing may differ)."""

    @pytest.mark.parametrize("system", list(SYSTEMS))
    def test_disjoint_upserts_agree(self, system):
        machine = Machine()
        table = TxHashMap(machine, buckets=16)
        programs = []
        for tid in range(4):
            programs.append([
                spec(lambda k=(tid * 100 + i): table.put(k, k), "put")
                for i in range(20)])
        run_program(machine, system, programs)
        expected = {tid * 100 + i: tid * 100 + i
                    for tid in range(4) for i in range(20)}
        assert table.to_dict() == expected
